// libFuzzer harness for the durable-write plane (sim/io/, DESIGN.md
// section 15): the input is a fault-plan spec string, so the fuzzer
// mutates fault *schedules* -- short writes, ENOSPC budgets, EIO/fsync/
// rename failures, crash points -- and every schedule is driven through
// the two durability contracts:
//
//   1. Atomic replace: publish artifact v2 over a complete v1 under the
//      mutated plan.  Invariant (trap on violation): the target always
//      reads back as exactly v1 or exactly v2 -- a CRC-valid TMST
//      snapshot, never a torn mix.
//
//   2. Append journal: append frames under the same plan.  Invariant:
//      unless the plan simulated a crash (which legitimately leaves a
//      torn tail for readers to drop), the file ends exactly at the
//      writer's committed-frame boundary; and the tolerant checkpoint
//      prober must classify whatever wreckage remains without crashing.
//
// The spec parser itself is the third surface: arbitrary bytes must parse
// or be rejected, never crash.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <string_view>
#include <vector>

#include "core/stream_distiller.hpp"
#include "sim/io/durable.hpp"
#include "sim/io/fault_plan.hpp"
#include "sim/status/status.hpp"

#if !defined(_WIN32)
#include <unistd.h>
#endif

namespace {

namespace fs = std::filesystem;
using namespace tracemod::sim::io;
namespace status = tracemod::sim::status;

const std::string& work_dir() {
  static const std::string dir = [] {
#if defined(_WIN32)
    const unsigned long pid = 0;
#else
    const unsigned long pid = static_cast<unsigned long>(::getpid());
#endif
    std::string d = (fs::temp_directory_path() /
                     ("tracemod_fuzz_io." + std::to_string(pid)))
                        .string();
    fs::create_directories(d);
    return d;
  }();
  return dir;
}

void clean_work_dir() {
  std::error_code ec;
  for (const fs::directory_entry& e : fs::directory_iterator(work_dir(), ec)) {
    fs::remove(e.path(), ec);
  }
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

std::string_view view(const std::vector<std::uint8_t>& bytes) {
  return std::string_view(reinterpret_cast<const char*>(bytes.data()),
                          bytes.size());
}

[[noreturn]] void die(const char* invariant) {
  std::fprintf(stderr, "durability invariant violated: %s\n", invariant);
  __builtin_trap();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > 512) size = 512;  // specs are short; cap parser input
  const std::string spec(reinterpret_cast<const char*>(data), size);

  // Surface 1: the parser is total -- parse or reject, never crash.
  auto cfg = FaultPlanConfig::parse(spec);
  if (!cfg) return 0;
  cfg->log_path.clear();  // never write to fuzzer-chosen paths
  cfg->match.clear();     // every op below is eligible for faults
  // eintr-chance=1 would livelock the retry loop by construction; real
  // schedules interrupt with probability < 1.
  if (cfg->eintr_chance > 0.9) cfg->eintr_chance = 0.9;

  // Surface 2: atomic replace under the mutated schedule.
  const std::string target = work_dir() + "/artifact.status";
  status::StatusSnapshot v1;
  v1.driver = "fuzz";
  v1.seq = 1;
  const std::vector<std::uint8_t> img1 = status::encode_status(v1);
  if (!write_file_atomic(target, view(img1)).ok) {
    clean_work_dir();  // real I/O trouble (not injected); skip this input
    return 0;
  }
  status::StatusSnapshot v2;
  v2.driver = "fuzz";
  v2.phase = "a longer phase so v1 and v2 differ in length";
  v2.seq = 2;
  const std::vector<std::uint8_t> img2 = status::encode_status(v2);
  FaultPlan plan(*cfg);
  (void)write_file_atomic(target, view(img2), &plan);

  const status::StatusReadResult read = status::read_status_file(target);
  if (read.status != status::StatusReadStatus::kOk) {
    die("status target must stay a complete CRC-valid snapshot");
  }
  if (read.snapshot.seq != 1 && read.snapshot.seq != 2) {
    die("status target holds neither the previous nor the new snapshot");
  }

  // Surface 3: append journal under the same (possibly crashed) plan.
  const std::string journal = work_dir() + "/ckpt.tmdj";
  AppendJournalWriter writer;
  AppendJournalWriter::Options options;
  options.sync_every_frames = 2;
  options.plan = &plan;
  if (writer.open_fresh(journal, "FUZZHDR!", options).ok) {
    for (int i = 0; i < 4; ++i) {
      (void)writer.append("frame payload #" + std::to_string(i));
    }
    (void)writer.close();
  }
  const std::string bytes = slurp(journal);
  if (!plan.crashed() && bytes.size() != writer.committed_bytes()) {
    die("journal does not end at the committed-frame boundary");
  }
  // The tolerant checkpoint reader must classify any wreckage.
  (void)tracemod::core::probe_checkpoint_journal(bytes.data(), bytes.size());

  // Surface 4: the stale-tmp sweeper walks whatever the plan left behind.
  (void)AtomicFileWriter::sweep_stale_tmp(target);

  clean_work_dir();
  return 0;
}
