// libFuzzer harness for the TMDJ checkpoint-journal reader: arbitrary
// bytes through the tolerant resume-path parser.  The reader's contract is
// total: any input -- torn frames, lying length prefixes, giant counts --
// must decode what checksums and silently skip the rest.  A crash, hang,
// throw, or allocation blow-up is a bug (a damaged checkpoint must cost a
// re-distillation, never the corpus run).
#include <cstddef>
#include <cstdint>

#include "core/stream_distiller.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  tracemod::core::probe_checkpoint_journal(
      reinterpret_cast<const char*>(data), size);
  return 0;
}
