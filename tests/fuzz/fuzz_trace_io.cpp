// libFuzzer harness for the binary trace readers: arbitrary bytes through
// both strict and salvage mode.  The only acceptable outcomes are a decoded
// trace or a TraceFormatError -- any crash, hang, sanitizer report, or
// allocation blow-up is a bug.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "trace/trace_io.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);
  try {
    std::istringstream in(bytes);
    tracemod::trace::read_trace(in);
  } catch (const tracemod::trace::TraceFormatError&) {
  }
  try {
    std::istringstream in(bytes);
    tracemod::trace::read_trace_ex(
        in, tracemod::trace::TraceReadOptions{
                tracemod::trace::ReadMode::kSalvage, nullptr});
  } catch (const tracemod::trace::TraceFormatError&) {
    // Salvage may still reject an unusable header.
  }
  return 0;
}
