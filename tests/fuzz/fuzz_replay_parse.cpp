// libFuzzer harness for the text replay-trace parser: arbitrary bytes must
// either parse or throw std::runtime_error with a diagnostic -- never crash
// or accept non-finite/out-of-range tuples.
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/model.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    std::istringstream in(text);
    const auto trace = tracemod::core::ReplayTrace::parse(in);
    // Whatever parses must satisfy the validated invariants.
    for (const auto& t : trace.tuples()) {
      if (!std::isfinite(t.latency_s) || t.latency_s < 0.0 ||
          t.loss < 0.0 || t.loss > 1.0 || t.d.count() <= 0) {
        __builtin_trap();
      }
    }
  } catch (const std::runtime_error&) {
  }
  return 0;
}
