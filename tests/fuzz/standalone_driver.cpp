// Minimal libFuzzer-compatible driver for toolchains without
// -fsanitize=fuzzer (e.g. GCC): replays every file passed on the command
// line through LLVMFuzzerTestOneInput.  Continuous mutation coverage on
// such toolchains comes from the deterministic 10k-mutation corruption
// soak in tests/trace/fault_injector_test.cpp instead.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

int main(int argc, char** argv) {
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '-') continue;  // tolerate libFuzzer-style flags
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 1;
    }
    const std::string bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
    ++replayed;
  }
  std::printf("replayed %d input(s)\n", replayed);
  return 0;
}
