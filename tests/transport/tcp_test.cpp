#include "transport/tcp.hpp"

#include <gtest/gtest.h>

#include "testbed.hpp"

namespace tracemod::transport {
namespace {

using tracemod::testing::EthernetPair;
using tracemod::testing::LossyShim;

struct TcpPair : EthernetPair {
  TcpConnection* server_conn = nullptr;
  TcpConnection* client_conn = nullptr;

  explicit TcpPair(TcpConfig cfg = {}) : EthernetPair(cfg) {
    server.tcp().listen(80, [this](TcpConnection& c) { server_conn = &c; });
    client_conn = &client.tcp().connect({server_addr, 80});
  }
};

TEST(Tcp, HandshakeEstablishesBothEnds) {
  TcpPair net;
  bool connected = false;
  net.client_conn->set_on_connected([&] { connected = true; });
  net.loop.run();
  EXPECT_TRUE(connected);
  ASSERT_NE(net.server_conn, nullptr);
  EXPECT_TRUE(net.client_conn->established());
  EXPECT_TRUE(net.server_conn->established());
}

TEST(Tcp, SmallRecordDelivery) {
  TcpPair net;
  std::vector<std::uint64_t> ends;
  std::string got_meta;
  net.server.tcp().listen(81, [&](TcpConnection& c) {
    c.set_on_record([&](const std::any& meta, std::uint64_t end) {
      ends.push_back(end);
      if (meta.has_value()) got_meta = std::any_cast<std::string>(meta);
    });
  });
  auto& conn = net.client.tcp().connect({net.server_addr, 81});
  conn.set_on_connected([&] { conn.send(300, std::string("req")); });
  net.loop.run_for(sim::seconds(5));
  ASSERT_EQ(ends.size(), 1u);
  EXPECT_EQ(ends[0], 300u);
  EXPECT_EQ(got_meta, "req");
}

TEST(Tcp, BulkTransferDeliversAllBytes) {
  TcpPair net;
  std::uint64_t delivered = 0;
  net.server.tcp().listen(82, [&](TcpConnection& c) {
    c.set_on_bytes([&](std::uint64_t n) { delivered += n; });
  });
  auto& conn = net.client.tcp().connect({net.server_addr, 82});
  const std::uint64_t total = 1 << 20;  // 1 MiB
  conn.set_on_connected([&] { conn.send(total); });
  net.loop.run_for(sim::seconds(30));
  EXPECT_EQ(delivered, total);
  EXPECT_EQ(conn.stats().bytes_acked, total);
}

TEST(Tcp, ThroughputApproachesLinkRate) {
  TcpPair net;
  sim::TimePoint done{};
  const std::uint64_t total = 4 << 20;  // 4 MiB
  net.server.tcp().listen(83, [&](TcpConnection& c) {
    c.set_on_bytes([&, got = std::uint64_t{0}](std::uint64_t n) mutable {
      got += n;
      if (got == total) done = net.loop.now();
    });
  });
  auto& conn = net.client.tcp().connect({net.server_addr, 83});
  conn.set_on_connected([&] { conn.send(total); });
  net.loop.run_for(sim::seconds(120));
  ASSERT_NE(done, sim::TimePoint{});
  const double secs = sim::to_seconds(done);
  const double goodput = static_cast<double>(total) * 8.0 / secs;
  // 10 Mb/s wire; expect > 60% goodput with headers, acks, delack.
  EXPECT_GT(goodput, 6e6);
}

TEST(Tcp, RecordBoundariesPreservedInOrder) {
  TcpPair net;
  std::vector<int> tags;
  std::vector<std::uint64_t> ends;
  net.server.tcp().listen(84, [&](TcpConnection& c) {
    c.set_on_record([&](const std::any& meta, std::uint64_t end) {
      tags.push_back(std::any_cast<int>(meta));
      ends.push_back(end);
    });
  });
  auto& conn = net.client.tcp().connect({net.server_addr, 84});
  conn.set_on_connected([&] {
    conn.send(100, 1);
    conn.send(5000, 2);
    conn.send(1, 3);
    conn.send(20000, 4);
  });
  net.loop.run_for(sim::seconds(10));
  EXPECT_EQ(tags, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(ends, (std::vector<std::uint64_t>{100, 5100, 5101, 25101}));
}

TEST(Tcp, BidirectionalTransfer) {
  TcpPair net;
  std::uint64_t to_server = 0, to_client = 0;
  net.server.tcp().listen(85, [&](TcpConnection& c) {
    c.set_on_bytes([&](std::uint64_t n) { to_server += n; });
    c.send(50000);
  });
  auto& conn = net.client.tcp().connect({net.server_addr, 85});
  conn.set_on_bytes([&](std::uint64_t n) { to_client += n; });
  conn.set_on_connected([&] { conn.send(30000); });
  net.loop.run_for(sim::seconds(10));
  EXPECT_EQ(to_server, 30000u);
  EXPECT_EQ(to_client, 50000u);
}

TEST(Tcp, CloseHandshakeReachesClosedBothSides) {
  TcpPair net;
  bool client_closed = false, server_closed = false;
  net.server.tcp().listen(86, [&](TcpConnection& c) {
    c.set_on_peer_fin([&c] { c.close(); });
    c.set_on_closed([&](bool err) {
      server_closed = true;
      EXPECT_FALSE(err);
    });
  });
  auto& conn = net.client.tcp().connect({net.server_addr, 86});
  conn.set_on_closed([&](bool err) {
    client_closed = true;
    EXPECT_FALSE(err);
  });
  conn.set_on_connected([&] {
    conn.send(1000);
    conn.close();
  });
  net.loop.run_for(sim::seconds(30));
  EXPECT_TRUE(client_closed);
  EXPECT_TRUE(server_closed);
  EXPECT_EQ(conn.state(), TcpConnection::State::kClosed);
}

TEST(Tcp, LostDataSegmentIsRetransmitted) {
  TcpPair net;
  // Install a lossy shim on the client; drop one outbound data segment.
  net.client.node().wrap_interface(0, [](std::unique_ptr<net::NetDevice> d) {
    return std::make_unique<LossyShim>(std::move(d));
  });
  auto& shim = static_cast<LossyShim&>(net.client.node().device(0));

  std::uint64_t delivered = 0;
  net.server.tcp().listen(87, [&](TcpConnection& c) {
    c.set_on_bytes([&](std::uint64_t n) { delivered += n; });
  });
  auto& conn = net.client.tcp().connect({net.server_addr, 87});
  const std::uint64_t total = 200000;
  conn.set_on_connected([&] {
    // Drop the 10th outbound packet from now (a mid-stream data segment).
    shim.drop_outbound_at(10);
    conn.send(total);
  });
  net.loop.run_for(sim::seconds(60));
  EXPECT_EQ(delivered, total);
  EXPECT_GE(conn.stats().retransmits, 1u);
}

TEST(Tcp, LostSynRetries) {
  EthernetPair net;
  net.client.node().wrap_interface(0, [](std::unique_ptr<net::NetDevice> d) {
    return std::make_unique<LossyShim>(std::move(d));
  });
  auto& shim = static_cast<LossyShim&>(net.client.node().device(0));
  shim.drop_outbound_at(0);  // the SYN

  bool connected = false;
  net.server.tcp().listen(88, [](TcpConnection&) {});
  auto& conn = net.client.tcp().connect({net.server_addr, 88});
  conn.set_on_connected([&] { connected = true; });
  net.loop.run_for(sim::seconds(10));
  EXPECT_TRUE(connected);
  EXPECT_GE(conn.stats().rto_events, 1u);
}

TEST(Tcp, LostFinRetransmitted) {
  TcpPair net;
  net.client.node().wrap_interface(0, [](std::unique_ptr<net::NetDevice> d) {
    return std::make_unique<LossyShim>(std::move(d));
  });
  auto& shim = static_cast<LossyShim&>(net.client.node().device(0));

  bool server_got_fin = false;
  net.server.tcp().listen(89, [&](TcpConnection& c) {
    c.set_on_peer_fin([&] { server_got_fin = true; });
  });
  auto& conn = net.client.tcp().connect({net.server_addr, 89});
  conn.set_on_connected([&] {
    conn.send(100);
    shim.drop_outbound_at(1);  // 0: the data segment's... count carefully
    conn.close();
  });
  net.loop.run_for(sim::seconds(60));
  EXPECT_TRUE(server_got_fin);
}

TEST(Tcp, HeavyRandomLossStillCompletes) {
  // 20% loss both ways; a 100 KB transfer must still complete.
  class RandomLoss : public net::DeviceShim {
   public:
    RandomLoss(std::unique_ptr<net::NetDevice> d, double p, std::uint64_t seed)
        : DeviceShim(std::move(d)), p_(p), rng_(seed) {}

   protected:
    void on_outbound(net::Packet pkt) override {
      if (!rng_.chance(p_)) send_down(std::move(pkt));
    }
    void on_inbound(net::Packet pkt) override {
      if (!rng_.chance(p_)) send_up(std::move(pkt));
    }

   private:
    double p_;
    sim::Rng rng_;
  };

  EthernetPair net;
  net.client.node().wrap_interface(0, [](std::unique_ptr<net::NetDevice> d) {
    return std::make_unique<RandomLoss>(std::move(d), 0.2, 42);
  });

  std::uint64_t delivered = 0;
  net.server.tcp().listen(90, [&](TcpConnection& c) {
    c.set_on_bytes([&](std::uint64_t n) { delivered += n; });
  });
  auto& conn = net.client.tcp().connect({net.server_addr, 90});
  conn.set_on_connected([&] { conn.send(100000); });
  net.loop.run_for(sim::seconds(600));
  EXPECT_EQ(delivered, 100000u);
}

TEST(Tcp, CongestionWindowGrowsFromInitialWindow) {
  TcpPair net;
  EXPECT_EQ(net.client_conn->cwnd(),
            net.client.tcp().config().initial_cwnd_segments *
                net.client.tcp().config().mss);
  std::uint64_t delivered = 0;
  net.server.tcp().listen(91, [&](TcpConnection& c) {
    c.set_on_bytes([&](std::uint64_t n) { delivered += n; });
  });
  auto& conn = net.client.tcp().connect({net.server_addr, 91});
  conn.set_on_connected([&] { conn.send(60000); });
  net.loop.run_for(sim::seconds(10));
  EXPECT_EQ(delivered, 60000u);
  EXPECT_GT(conn.cwnd(), net.client.tcp().config().mss);
}

TEST(Tcp, AbortSendsRstAndClosesPeer) {
  TcpPair net;
  bool server_error = false;
  net.server.tcp().listen(92, [&](TcpConnection& c) {
    c.set_on_closed([&](bool err) { server_error = err; });
  });
  auto& conn = net.client.tcp().connect({net.server_addr, 92});
  conn.set_on_connected([&] { conn.abort(); });
  net.loop.run_for(sim::seconds(5));
  EXPECT_EQ(conn.state(), TcpConnection::State::kClosed);
  EXPECT_TRUE(server_error);
}

TEST(Tcp, RtoBackoffGivesUpEventually) {
  // Connect to a black hole: all client packets dropped.
  class BlackHole : public net::DeviceShim {
   public:
    using DeviceShim::DeviceShim;

   protected:
    void on_outbound(net::Packet) override {}
  };
  EthernetPair net;
  net.client.node().wrap_interface(0, [](std::unique_ptr<net::NetDevice> d) {
    return std::make_unique<BlackHole>(std::move(d));
  });
  bool closed_with_error = false;
  net.server.tcp().listen(93, [](TcpConnection&) {});
  auto& conn = net.client.tcp().connect({net.server_addr, 93});
  conn.set_on_closed([&](bool err) { closed_with_error = err; });
  net.loop.run_for(sim::seconds(3600));
  EXPECT_TRUE(closed_with_error);
  EXPECT_EQ(conn.state(), TcpConnection::State::kClosed);
}

TEST(Tcp, StateNames) {
  EXPECT_STREQ(to_string(TcpConnection::State::kEstablished), "ESTABLISHED");
  EXPECT_STREQ(to_string(TcpConnection::State::kClosed), "CLOSED");
  EXPECT_STREQ(to_string(TcpConnection::State::kTimeWait), "TIME_WAIT");
}

TEST(Tcp, ManyParallelConnections) {
  EthernetPair net;
  int completed = 0;
  net.server.tcp().listen(94, [&](TcpConnection& c) {
    c.set_on_record([&c](const std::any&, std::uint64_t) {
      c.send(2000);  // respond
      c.close();
    });
  });
  for (int i = 0; i < 20; ++i) {
    auto& conn = net.client.tcp().connect({net.server_addr, 94});
    conn.set_on_connected([&conn] { conn.send(100); });
    conn.set_on_record([&](const std::any&, std::uint64_t) { ++completed; });
  }
  net.loop.run_for(sim::seconds(30));
  EXPECT_EQ(completed, 20);
}

}  // namespace
}  // namespace tracemod::transport
