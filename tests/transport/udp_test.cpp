#include "transport/udp.hpp"

#include <gtest/gtest.h>

#include "testbed.hpp"

namespace tracemod::transport {
namespace {

using tracemod::testing::EthernetPair;

TEST(Udp, DatagramDelivery) {
  EthernetPair net;
  UdpSocket server_sock(net.server.udp(), 2049);
  UdpSocket client_sock(net.client.udp());

  std::vector<std::pair<net::Packet, net::Endpoint>> got;
  server_sock.set_receive_callback(
      [&](const net::Packet& p, net::Endpoint from) {
        got.emplace_back(p, from);
      });

  client_sock.send_to({net.server_addr, 2049}, 512, std::string("hello"));
  net.loop.run();

  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].first.payload_size, 512u);
  EXPECT_EQ(std::any_cast<std::string>(got[0].first.payload), "hello");
  EXPECT_EQ(got[0].second.addr, net.client_addr);
  EXPECT_EQ(got[0].second.port, client_sock.port());
}

TEST(Udp, ReplyPath) {
  EthernetPair net;
  UdpSocket server_sock(net.server.udp(), 7);
  UdpSocket client_sock(net.client.udp());

  server_sock.set_receive_callback(
      [&](const net::Packet& p, net::Endpoint from) {
        server_sock.send_to(from, p.payload_size, p.payload);
      });
  int echoes = 0;
  client_sock.set_receive_callback(
      [&](const net::Packet&, net::Endpoint from) {
        ++echoes;
        EXPECT_EQ(from.port, 7);
      });

  client_sock.send_to({net.server_addr, 7}, 100);
  net.loop.run();
  EXPECT_EQ(echoes, 1);
}

TEST(Udp, EphemeralPortsAreDistinct) {
  EthernetPair net;
  UdpSocket s1(net.client.udp());
  UdpSocket s2(net.client.udp());
  UdpSocket s3(net.client.udp());
  EXPECT_NE(s1.port(), s2.port());
  EXPECT_NE(s2.port(), s3.port());
  EXPECT_GE(s1.port(), 32768);
}

TEST(Udp, RebindingTakenPortThrows) {
  EthernetPair net;
  UdpSocket s1(net.client.udp(), 9000);
  EXPECT_THROW(UdpSocket(net.client.udp(), 9000), std::runtime_error);
}

TEST(Udp, PortFreedOnDestruction) {
  EthernetPair net;
  {
    UdpSocket s1(net.client.udp(), 9000);
  }
  EXPECT_NO_THROW(UdpSocket(net.client.udp(), 9000));
}

TEST(Udp, NoListenerSilentlyDrops) {
  EthernetPair net;
  UdpSocket client_sock(net.client.udp());
  client_sock.send_to({net.server_addr, 4242}, 64);
  net.loop.run();  // must not crash
  EXPECT_EQ(net.server.node().stats().received, 1u);
}

}  // namespace
}  // namespace tracemod::transport
