// Shared fixture: two Hosts on one Ethernet segment with default routes.
#pragma once

#include <memory>
#include <set>

#include "net/ethernet.hpp"
#include "transport/host.hpp"

namespace tracemod::testing {

struct EthernetPair {
  sim::SimContext ctx;
  sim::EventLoop& loop{ctx.loop()};
  net::EthernetSegment segment{loop};
  transport::Host client;
  transport::Host server;
  net::IpAddress client_addr{10, 0, 0, 1};
  net::IpAddress server_addr{10, 0, 0, 2};

  explicit EthernetPair(transport::TcpConfig tcp_cfg = {})
      : client{ctx, "client", 101, tcp_cfg},
        server{ctx, "server", 202, tcp_cfg} {
    attach(client, client_addr, "client-eth0");
    attach(server, server_addr, "server-eth0");
  }

  void attach(transport::Host& host, net::IpAddress addr, const char* name) {
    auto dev = std::make_unique<net::EthernetDevice>(segment, name);
    dev->claim_address(addr);
    host.node().add_interface(std::move(dev), addr);
    host.node().set_default_route(0);
  }
};

/// A shim that drops packets by index or probabilistically; used to test
/// loss recovery without a full wireless channel.
class LossyShim : public net::DeviceShim {
 public:
  using net::DeviceShim::DeviceShim;

  /// Drop the nth outbound packet (0-based) seen from now on.
  void drop_outbound_at(std::uint64_t index) { drop_out_.insert(index); }
  void drop_inbound_at(std::uint64_t index) { drop_in_.insert(index); }

 protected:
  void on_outbound(net::Packet pkt) override {
    if (drop_out_.erase(out_seen_++) > 0) return;
    send_down(std::move(pkt));
  }
  void on_inbound(net::Packet pkt) override {
    if (drop_in_.erase(in_seen_++) > 0) return;
    send_up(std::move(pkt));
  }

 private:
  std::uint64_t out_seen_ = 0;
  std::uint64_t in_seen_ = 0;
  std::set<std::uint64_t> drop_out_;
  std::set<std::uint64_t> drop_in_;
};

}  // namespace tracemod::testing
