#include "transport/icmp.hpp"

#include <gtest/gtest.h>

#include "testbed.hpp"

namespace tracemod::transport {
namespace {

using tracemod::testing::EthernetPair;

TEST(Icmp, EchoIsAnsweredWithSameSizeAndFields) {
  EthernetPair net;
  std::vector<net::Packet> replies;
  net.client.icmp().set_reply_callback(
      [&](const net::Packet& p) { replies.push_back(p); });

  const auto stamp = net.loop.now() + sim::microseconds(17);
  net.client.icmp().send_echo(net.server_addr, /*id=*/77, /*seq=*/5,
                              /*payload_size=*/64, stamp);
  net.loop.run();

  ASSERT_EQ(replies.size(), 1u);
  const auto& r = replies[0];
  EXPECT_EQ(r.icmp().type, net::IcmpHeader::Type::kEchoReply);
  EXPECT_EQ(r.icmp().id, 77);
  EXPECT_EQ(r.icmp().seq, 5);
  EXPECT_EQ(r.payload_size, 64u);
  EXPECT_EQ(r.icmp().payload_timestamp, stamp);  // payload copied back
  EXPECT_EQ(r.src, net.server_addr);
}

TEST(Icmp, RttIsPositiveAndPlausible) {
  EthernetPair net;
  sim::Duration rtt{};
  net.client.icmp().set_reply_callback([&](const net::Packet& p) {
    rtt = net.loop.now() - p.icmp().payload_timestamp;
  });
  net.client.icmp().send_echo(net.server_addr, 1, 1, 100, net.loop.now());
  net.loop.run();
  EXPECT_GT(rtt.count(), 0);
  EXPECT_LT(sim::to_seconds(rtt), 0.01);  // sub-10ms on idle Ethernet
}

TEST(Icmp, StatsCount) {
  EthernetPair net;
  net.client.icmp().set_reply_callback([](const net::Packet&) {});
  for (int i = 0; i < 3; ++i) {
    net.client.icmp().send_echo(net.server_addr, 9, static_cast<uint16_t>(i),
                                32, net.loop.now());
  }
  net.loop.run();
  EXPECT_EQ(net.client.icmp().stats().echoes_sent, 3u);
  EXPECT_EQ(net.server.icmp().stats().echoes_answered, 3u);
  EXPECT_EQ(net.client.icmp().stats().replies_received, 3u);
}

TEST(Icmp, MultipleOutstandingEchoesAllAnswered) {
  EthernetPair net;
  std::vector<std::uint16_t> seqs;
  net.client.icmp().set_reply_callback(
      [&](const net::Packet& p) { seqs.push_back(p.icmp().seq); });
  for (std::uint16_t i = 0; i < 10; ++i) {
    net.client.icmp().send_echo(net.server_addr, 1, i, 1000, net.loop.now());
  }
  net.loop.run();
  ASSERT_EQ(seqs.size(), 10u);
  for (std::uint16_t i = 0; i < 10; ++i) EXPECT_EQ(seqs[i], i);
}

}  // namespace
}  // namespace tracemod::transport
