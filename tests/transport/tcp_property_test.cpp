// Parameterized property sweeps over the TCP implementation.
#include <gtest/gtest.h>

#include "testbed.hpp"
#include "transport/tcp.hpp"

namespace tracemod::transport {
namespace {

using tracemod::testing::EthernetPair;

/// Random loss in both directions at rate p.
class RandomLoss : public net::DeviceShim {
 public:
  RandomLoss(std::unique_ptr<net::NetDevice> d, double p, std::uint64_t seed)
      : DeviceShim(std::move(d)), p_(p), rng_(seed) {}

 protected:
  void on_outbound(net::Packet pkt) override {
    if (!rng_.chance(p_)) send_down(std::move(pkt));
  }
  void on_inbound(net::Packet pkt) override {
    if (!rng_.chance(p_)) send_up(std::move(pkt));
  }

 private:
  double p_;
  sim::Rng rng_;
};

struct TransferResult {
  bool complete = false;
  double elapsed_s = 0;
  std::uint64_t retransmits = 0;
};

TransferResult run_transfer(double loss, std::uint64_t bytes,
                            std::uint64_t seed) {
  EthernetPair net;
  if (loss > 0) {
    net.client.node().wrap_interface(
        0, [&](std::unique_ptr<net::NetDevice> d) {
          return std::make_unique<RandomLoss>(std::move(d), loss, seed);
        });
  }
  std::uint64_t delivered = 0;
  net.server.tcp().listen(4000, [&](TcpConnection& c) {
    c.set_on_bytes([&](std::uint64_t n) { delivered += n; });
  });
  auto& conn = net.client.tcp().connect({net.server_addr, 4000});
  conn.set_on_connected([&] { conn.send(bytes); });
  const sim::TimePoint deadline = net.loop.now() + sim::seconds(3600);
  while (delivered < bytes && net.loop.now() < deadline && net.loop.step()) {
  }
  TransferResult r;
  r.complete = (delivered == bytes);
  r.elapsed_s = sim::to_seconds(net.loop.now());
  r.retransmits = conn.stats().retransmits;
  return r;
}

// --- completion under loss ---------------------------------------------

class TcpLossSweep : public ::testing::TestWithParam<double> {};

TEST_P(TcpLossSweep, TransferCompletesAndRetransmitsScale) {
  const double loss = GetParam();
  const auto r = run_transfer(loss, 300'000, 42);
  EXPECT_TRUE(r.complete) << "at loss " << loss;
  if (loss == 0.0) {
    EXPECT_EQ(r.retransmits, 0u);
  } else {
    EXPECT_GT(r.retransmits, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, TcpLossSweep,
                         ::testing::Values(0.0, 0.01, 0.05, 0.10, 0.25));

TEST(TcpLossProperty, ThroughputDegradesWithLoss) {
  // Not strictly monotone per-seed, so compare the extremes.
  const auto clean = run_transfer(0.0, 300'000, 7);
  const auto lossy = run_transfer(0.10, 300'000, 7);
  EXPECT_LT(clean.elapsed_s, lossy.elapsed_s);
}

// --- exact delivery across sizes ----------------------------------------

class TcpSizeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TcpSizeSweep, DeliversExactlyOnce) {
  EthernetPair net;
  const std::uint64_t bytes = GetParam();
  std::uint64_t delivered = 0;
  bool fin_seen = false;
  net.server.tcp().listen(4001, [&](TcpConnection& c) {
    c.set_on_bytes([&](std::uint64_t n) { delivered += n; });
    c.set_on_peer_fin([&] { fin_seen = true; });
  });
  auto& conn = net.client.tcp().connect({net.server_addr, 4001});
  conn.set_on_connected([&] {
    conn.send(bytes);
    conn.close();
  });
  net.loop.run_for(sim::seconds(600));
  EXPECT_EQ(delivered, bytes);
  EXPECT_TRUE(fin_seen);
  EXPECT_EQ(conn.stats().bytes_acked, bytes);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TcpSizeSweep,
                         ::testing::Values(1, 100, 1460, 1461, 16 * 1024,
                                           100'000, 1'000'000));

// --- record integrity under loss ----------------------------------------

class TcpRecordLossSweep : public ::testing::TestWithParam<double> {};

TEST_P(TcpRecordLossSweep, RecordsArriveOnceInOrderDespiteLoss) {
  EthernetPair net;
  net.client.node().wrap_interface(0, [&](std::unique_ptr<net::NetDevice> d) {
    return std::make_unique<RandomLoss>(std::move(d), GetParam(), 99);
  });
  std::vector<int> tags;
  net.server.tcp().listen(4002, [&](TcpConnection& c) {
    c.set_on_record([&](const std::any& meta, std::uint64_t) {
      tags.push_back(std::any_cast<int>(meta));
    });
  });
  auto& conn = net.client.tcp().connect({net.server_addr, 4002});
  conn.set_on_connected([&] {
    for (int i = 0; i < 50; ++i) conn.send(2000, i);
  });
  net.loop.run_for(sim::seconds(600));
  ASSERT_EQ(tags.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(tags[static_cast<std::size_t>(i)], i);
}

INSTANTIATE_TEST_SUITE_P(LossRates, TcpRecordLossSweep,
                         ::testing::Values(0.02, 0.10, 0.20));

// --- window sizes ---------------------------------------------------------

class TcpWindowSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TcpWindowSweep, SmallWindowsStillComplete) {
  TcpConfig cfg;
  cfg.recv_buffer = GetParam();
  EthernetPair net(cfg);
  std::uint64_t delivered = 0;
  net.server.tcp().listen(4003, [&](TcpConnection& c) {
    c.set_on_bytes([&](std::uint64_t n) { delivered += n; });
  });
  auto& conn = net.client.tcp().connect({net.server_addr, 4003});
  conn.set_on_connected([&] { conn.send(100'000); });
  net.loop.run_for(sim::seconds(600));
  EXPECT_EQ(delivered, 100'000u);
}

INSTANTIATE_TEST_SUITE_P(Windows, TcpWindowSweep,
                         ::testing::Values(2 * 1460, 8 * 1024, 16 * 1024,
                                           64 * 1024));

}  // namespace
}  // namespace tracemod::transport
