// The umbrella header must compile standalone and expose the public API.
#include "tracemod.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, PublicApiIsReachable) {
  tracemod::core::QualityTuple t{tracemod::sim::seconds(1), 0.003, 5e-6,
                                 1e-6, 0.02};
  EXPECT_GT(t.bottleneck_bandwidth_bps(), 0);
  EXPECT_EQ(tracemod::scenarios::all_scenarios().size(), 4u);
}

}  // namespace
