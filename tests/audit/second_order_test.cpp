// Second-order collection tests: the tap really sits above the modulation
// layer, collection is deterministic, and the PR-2 fault drills (kernel
// buffer pressure, daemon faults) degrade collection without crashing it.
#include <gtest/gtest.h>

#include <sstream>

#include "audit/second_order.hpp"
#include "trace/trace_io.hpp"

namespace tracemod::audit {
namespace {

SecondOrderConfig quick_config() {
  SecondOrderConfig cfg;
  cfg.emulator.seed = 11;
  cfg.settle = sim::seconds(1);
  return cfg;
}

TEST(SecondOrderCollection, ObservesTheModulatedFlow) {
  const core::ReplayTrace reference =
      core::ReplayTrace::wavelan_like(sim::seconds(30));
  const SecondOrderResult r =
      collect_second_order(reference, quick_config());

  EXPECT_EQ(r.ran_for, reference.total_duration() + sim::seconds(1));
  ASSERT_FALSE(r.trace.records.empty());
  EXPECT_FALSE(r.trace.echoes_sent().empty());
  EXPECT_FALSE(r.trace.echo_replies().empty());
  EXPECT_GT(r.ping.echoes_sent, 0u);
  EXPECT_GT(r.ping.stage1_replies, 0u);
  EXPECT_GT(r.ping.stage2_replies, 0u);
  EXPECT_EQ(r.buffer_drops, 0u);
  EXPECT_EQ(r.trace.total_lost_records(), 0u);

  // The tap sat above modulation: stage-1 probes through a WaveLAN-like
  // trace must observe round-trips far beyond the bare Ethernet's
  // (sub-millisecond), i.e. the emulated network, not the physical one.
  double max_rtt = 0.0;
  for (const trace::PacketRecord& p : r.trace.echo_replies()) {
    max_rtt = std::max(max_rtt, sim::to_seconds(p.rtt()));
  }
  EXPECT_GT(max_rtt, 0.002);
}

TEST(SecondOrderCollection, IsDeterministicForAConfig) {
  const core::ReplayTrace reference =
      core::ReplayTrace::wavelan_like(sim::seconds(30));
  const SecondOrderResult a =
      collect_second_order(reference, quick_config());
  const SecondOrderResult b =
      collect_second_order(reference, quick_config());
  std::ostringstream ba, bb;
  trace::write_trace(ba, a.trace);
  trace::write_trace(bb, b.trace);
  EXPECT_EQ(ba.str(), bb.str());
  EXPECT_EQ(a.ping.echoes_sent, b.ping.echoes_sent);
  EXPECT_EQ(a.ping.stage1_replies, b.ping.stage1_replies);
}

TEST(SecondOrderCollection, EmptyReferenceMeasuresTheBareTestbed) {
  // The baseline-calibration mode: no tuples, modulation is transparent,
  // so observed round-trips are the physical testbed's own cost.
  SecondOrderConfig cfg = quick_config();
  cfg.run_for = sim::seconds(20);
  const SecondOrderResult r =
      collect_second_order(core::ReplayTrace{}, cfg);
  ASSERT_FALSE(r.trace.echo_replies().empty());
  for (const trace::PacketRecord& p : r.trace.echo_replies()) {
    EXPECT_LT(sim::to_seconds(p.rtt()), 0.005)
        << "bare-Ethernet probe RTT should be a few serializations at most";
  }
}

TEST(SecondOrderCollection, KernelBufferPressureSurfacesAsLostRecords) {
  const core::ReplayTrace reference =
      core::ReplayTrace::wavelan_like(sim::seconds(30));
  SecondOrderConfig cfg = quick_config();
  cfg.buffer_pressure = 0.0006;  // a four-record buffer: bursts overrun it
  const SecondOrderResult r = collect_second_order(reference, cfg);
  EXPECT_GT(r.buffer_drops, 0u);
  EXPECT_GT(r.trace.total_lost_records(), 0u);
  std::size_t markers = 0;
  for (const trace::TraceRecord& rec : r.trace.records) {
    markers += std::holds_alternative<trace::LostRecords>(rec);
  }
  EXPECT_GT(markers, 0u);
}

TEST(SecondOrderCollection, SurvivesDaemonFaults) {
  // Modulation-daemon stalls starve the replay pseudo-device mid-run; the
  // collection must still complete and keep observing probes.
  const core::ReplayTrace reference =
      core::ReplayTrace::wavelan_like(sim::seconds(30));
  SecondOrderConfig cfg = quick_config();
  cfg.emulator.daemon_faults.stall_chance = 0.3;
  cfg.emulator.daemon_faults.stall = sim::milliseconds(800);
  cfg.emulator.daemon_faults.wakeup_factor = 4.0;
  const SecondOrderResult r = collect_second_order(reference, cfg);
  EXPECT_FALSE(r.trace.records.empty());
  EXPECT_GT(r.ping.stage1_replies, 0u);
}

}  // namespace
}  // namespace tracemod::audit
