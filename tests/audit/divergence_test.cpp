// Divergence-engine unit tests: the KS statistic, window scoring over a
// real second-order collection, and the degraded-collection exclusion
// rule (LostRecords windows never contribute to the aggregates).
#include <gtest/gtest.h>

#include <cmath>

#include "audit/divergence.hpp"
#include "audit/second_order.hpp"

namespace tracemod::audit {
namespace {

TEST(KsDistance, EmptySamplesScoreZero) {
  EXPECT_EQ(ks_distance({}, {}), 0.0);
  EXPECT_EQ(ks_distance({1.0, 2.0}, {}), 0.0);
  EXPECT_EQ(ks_distance({}, {1.0, 2.0}), 0.0);
}

TEST(KsDistance, IdenticalSamplesScoreZero) {
  const std::vector<double> s = {0.1, 0.2, 0.3, 0.4, 0.5};
  EXPECT_DOUBLE_EQ(ks_distance(s, s), 0.0);
}

TEST(KsDistance, DisjointSamplesScoreOne) {
  EXPECT_DOUBLE_EQ(ks_distance({1.0, 2.0, 3.0}, {10.0, 11.0, 12.0}), 1.0);
}

TEST(KsDistance, HalfOverlapScoresHalf) {
  // b is a shifted by two of four: the empirical CDFs differ by exactly
  // 0.5 at the crossover.
  EXPECT_DOUBLE_EQ(ks_distance({1.0, 2.0, 3.0, 4.0}, {3.0, 4.0, 5.0, 6.0}),
                   0.5);
}

TEST(KsDistance, InputOrderIsIrrelevant) {
  EXPECT_DOUBLE_EQ(ks_distance({3.0, 1.0, 2.0}, {2.5, 0.5, 1.5}),
                   ks_distance({1.0, 2.0, 3.0}, {0.5, 1.5, 2.5}));
}

SecondOrderConfig quick_config() {
  SecondOrderConfig cfg;
  cfg.emulator.seed = 7;
  cfg.settle = sim::seconds(1);
  return cfg;
}

TEST(ScoreDivergence, FaithfulCollectionScoresLowOnEveryAxis) {
  const core::ReplayTrace reference =
      core::ReplayTrace::wavelan_like(sim::seconds(60));
  const SecondOrderConfig cfg = quick_config();
  const SecondOrderResult second = collect_second_order(reference, cfg);
  ASSERT_FALSE(second.trace.records.empty());

  const DivergenceScores s =
      score_divergence(reference, second.trace, Baseline{});
  ASSERT_GT(s.auditable, 0u);
  EXPECT_EQ(s.unauditable, 0u);
  EXPECT_DOUBLE_EQ(s.auditable_fraction, 1.0);
  EXPECT_FALSE(s.recovered.empty());
  EXPECT_GT(s.rtt_samples, 100u);

  // A faithful 10 ms-tick emulation scored against the 10 ms contract
  // lands well inside the default ceilings (auditor.hpp calibration).
  EXPECT_LT(s.latency_rel_err, 0.60);
  EXPECT_LT(s.bandwidth_rel_err, 0.25);
  EXPECT_LT(s.loss_delta, 0.05);
  EXPECT_LT(s.ks_rtt, 0.50);
  EXPECT_GT(s.within_tolerance_fraction, 0.60);
  for (const WindowScore& w : s.windows) {
    EXPECT_TRUE(std::isfinite(w.latency_rel_err));
    EXPECT_TRUE(std::isfinite(w.bandwidth_rel_err));
    EXPECT_TRUE(std::isfinite(w.loss_delta));
  }
}

TEST(ScoreDivergence, CoarserThanContractTickDiverges) {
  // The shipped Porter trace: its real parameter variance keeps probe
  // groups resolvable even under a coarse emulator quantum (a constant
  // synthetic trace can collapse the stage-2 gap into a single tick and
  // starve the distiller of estimates entirely).
  const core::ReplayTrace reference = core::ReplayTrace::load(
      std::string(TRACEMOD_REPO_DIR) + "/porter_replay.trace");
  SecondOrderConfig cfg = quick_config();
  cfg.emulator.modulation.tick = sim::milliseconds(20);
  const SecondOrderResult second = collect_second_order(reference, cfg);

  // Scored against the 10 ms *contract* tick (the default), a doubled
  // emulator quantum must read as divergence on latency and bandwidth.
  const DivergenceScores s =
      score_divergence(reference, second.trace, Baseline{});
  ASSERT_GT(s.auditable, 0u);
  EXPECT_GT(s.latency_rel_err, 0.60);
  EXPECT_GT(s.bandwidth_rel_err, 0.25);
  EXPECT_GT(s.ks_rtt, 0.50);
  EXPECT_LT(s.within_tolerance_fraction, 0.60);
}

TEST(ScoreDivergence, LostRecordWindowsAreExcludedNotScored) {
  const core::ReplayTrace reference =
      core::ReplayTrace::wavelan_like(sim::seconds(60));
  SecondOrderConfig cfg = quick_config();
  cfg.buffer_pressure = 0.0006;  // a four-record buffer: bursts overrun it
  const SecondOrderResult second = collect_second_order(reference, cfg);
  ASSERT_GT(second.trace.total_lost_records(), 0u)
      << "pressure drill produced no overruns; the exclusion rule is "
         "untested";

  const DivergenceScores s =
      score_divergence(reference, second.trace, Baseline{});
  EXPECT_GT(s.unauditable, 0u);
  EXPECT_LT(s.auditable_fraction, 1.0);
  // Every unauditable window carries a reason and zeroed scores; only
  // auditable windows feed the aggregates.
  std::size_t counted = 0;
  for (const WindowScore& w : s.windows) {
    if (w.auditable()) {
      ++counted;
      continue;
    }
    EXPECT_TRUE(w.state == WindowState::kLostRecords ||
                w.state == WindowState::kNoEstimates);
    EXPECT_EQ(w.latency_rel_err, 0.0);
    EXPECT_EQ(w.bandwidth_rel_err, 0.0);
  }
  EXPECT_EQ(counted, s.auditable);
}

TEST(ScoreDivergence, EmptySecondOrderTraceScoresNothing) {
  const core::ReplayTrace reference =
      core::ReplayTrace::wavelan_like(sim::seconds(30));
  const DivergenceScores s =
      score_divergence(reference, trace::CollectedTrace{}, Baseline{});
  EXPECT_TRUE(s.windows.empty());
  EXPECT_EQ(s.auditable, 0u);
  EXPECT_EQ(s.rtt_samples, 0u);
}

}  // namespace
}  // namespace tracemod::audit
