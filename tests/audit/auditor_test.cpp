// Fidelity-auditor tests: verdicts over the closed loop (pass on a
// faithful pipeline, breach on a contract violation, unauditable -- never
// breach -- under degraded collection), the metrics/telemetry surfaces,
// and the JSON verdict shape CI's audit gate consumes.
#include <gtest/gtest.h>

#include <sstream>

#include "audit/auditor.hpp"
#include "sim/metric_names.hpp"

namespace tracemod::audit {
namespace {

AuditConfig quick_config() {
  AuditConfig cfg;
  cfg.second_order.emulator.seed = 21;
  cfg.second_order.settle = sim::seconds(1);
  cfg.baseline_run = sim::seconds(10);
  return cfg;
}

TEST(FidelityAuditor, FaithfulPipelinePasses) {
  const core::ReplayTrace reference =
      core::ReplayTrace::wavelan_like(sim::seconds(60));
  const FidelityReport r = audit_trace(reference, quick_config(), "wavelan");
  EXPECT_EQ(r.verdict, Verdict::kPass);
  EXPECT_TRUE(r.passed());
  EXPECT_TRUE(r.breaches.empty());
  EXPECT_EQ(r.label, "wavelan");
  EXPECT_EQ(r.lost_records, 0u);
  EXPECT_GT(r.scores.auditable, 0u);
}

TEST(FidelityAuditor, DoubledTickQuantumBreaches) {
  // The acceptance drill on the shipped Porter pipeline: a doubled tick
  // quantum must surface as a breach verdict with latency named.
  const core::ReplayTrace reference = core::ReplayTrace::load(
      std::string(TRACEMOD_REPO_DIR) + "/porter_replay.trace");
  AuditConfig cfg = quick_config();
  cfg.second_order.emulator.modulation.tick = sim::milliseconds(20);
  const FidelityReport r = audit_trace(reference, cfg);
  EXPECT_EQ(r.verdict, Verdict::kBreach);
  EXPECT_FALSE(r.passed());
  ASSERT_FALSE(r.breaches.empty());
  // Latency is the axis a coarser quantum hits hardest; it must be named.
  bool latency_named = false;
  for (const std::string& b : r.breaches) {
    latency_named |= b.find("latency") != std::string::npos;
  }
  EXPECT_TRUE(latency_named);
}

TEST(FidelityAuditor, DegradedCollectionIsUnauditableNeverBreach) {
  // The PR-2 fault drills at full strength: the tap's kernel buffer
  // squeezed to a sliver and the modulation daemon stalling.  Collection
  // degrades to LostRecords windows; the auditor must judge the run
  // unauditable -- a collection problem is not modulation divergence.
  const core::ReplayTrace reference =
      core::ReplayTrace::wavelan_like(sim::seconds(60));
  AuditConfig cfg = quick_config();
  cfg.second_order.buffer_pressure = 0.0006;
  cfg.second_order.emulator.daemon_faults.stall_chance = 0.2;
  cfg.second_order.emulator.daemon_faults.stall = sim::milliseconds(500);
  const FidelityReport r = audit_trace(reference, cfg);

  EXPECT_GT(r.lost_records, 0u);
  EXPECT_GT(r.buffer_drops, 0u);
  EXPECT_GT(r.scores.unauditable, 0u);
  EXPECT_NE(r.verdict, Verdict::kBreach)
      << "degraded collection was reported as modulation divergence";
  EXPECT_EQ(r.verdict, Verdict::kUnauditable);
  ASSERT_FALSE(r.breaches.empty());
  EXPECT_NE(r.breaches.front().find("degraded collection"),
            std::string::npos);
}

TEST(FidelityAuditor, IsDeterministicForAConfig) {
  const core::ReplayTrace reference =
      core::ReplayTrace::wavelan_like(sim::seconds(60));
  const FidelityReport a = audit_trace(reference, quick_config());
  const FidelityReport b = audit_trace(reference, quick_config());
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_DOUBLE_EQ(a.scores.latency_rel_err, b.scores.latency_rel_err);
  EXPECT_DOUBLE_EQ(a.scores.bandwidth_rel_err, b.scores.bandwidth_rel_err);
  EXPECT_DOUBLE_EQ(a.scores.ks_rtt, b.scores.ks_rtt);
  std::ostringstream ja, jb;
  write_fidelity_json(ja, a);
  write_fidelity_json(jb, b);
  EXPECT_EQ(ja.str(), jb.str());
}

TEST(FidelityAuditor, BaselineMeasuresTheBareTestbed) {
  const Baseline b = measure_baseline(SecondOrderConfig{}, sim::seconds(10));
  // 10 Mb/s Ethernet: 0.8 us/byte serialization, sub-millisecond fixed
  // cost.  The baseline must land in that physical regime.
  EXPECT_GT(b.per_byte_bottleneck, 0.4e-6);
  EXPECT_LT(b.per_byte_bottleneck, 1.6e-6);
  EXPECT_GE(b.latency_s, 0.0);
  EXPECT_LT(b.latency_s, 1e-3);
}

TEST(FidelityAuditor, RecordMetricsFeedsTheAuditFamily) {
  const core::ReplayTrace reference =
      core::ReplayTrace::wavelan_like(sim::seconds(60));
  const FidelityReport r = audit_trace(reference, quick_config());

  sim::MetricsRegistry metrics;
  record_metrics(r, metrics);
  EXPECT_EQ(metrics.value(sim::metric::kAuditWindowsTotal),
            r.scores.windows.size());
  EXPECT_EQ(metrics.value(sim::metric::kAuditWindowsUnauditable),
            r.scores.unauditable);
  EXPECT_EQ(metrics.value(sim::metric::kAuditWindowsWithinTolerance),
            r.scores.within_tolerance);

  const sim::TelemetrySnapshot snap = telemetry_snapshot(r);
  bool lat = false, bw = false, loss = false;
  for (const auto& [name, series] : snap.series) {
    lat |= name == sim::metric::kAuditLatencyRelErr && !series.empty();
    bw |= name == sim::metric::kAuditBandwidthRelErr && !series.empty();
    loss |= name == sim::metric::kAuditLossDelta && !series.empty();
  }
  EXPECT_TRUE(lat && bw && loss);
  ASSERT_FALSE(snap.tracks.empty());
  bool counter_events = false;
  for (const auto& e : snap.events) {
    counter_events |= e.phase == sim::TraceEvent::Phase::kCounter;
  }
  EXPECT_TRUE(counter_events);
}

TEST(FidelityAuditor, JsonVerdictHasTheGateSchema) {
  const core::ReplayTrace reference =
      core::ReplayTrace::wavelan_like(sim::seconds(60));
  const FidelityReport r =
      audit_trace(reference, quick_config(), "say \"hi\"\\path");
  std::ostringstream out;
  write_fidelity_json(out, r);
  const std::string json = out.str();

  EXPECT_NE(json.find("\"schema\": \"tracemod-fidelity-v1\""),
            std::string::npos);
  for (const char* key :
       {"\"verdict\"", "\"aggregate\"", "\"thresholds\"", "\"windows\"",
        "\"series\"", "\"breaches\"", "\"latency_rel_err\"", "\"ks_rtt\"",
        "\"within_tolerance_fraction\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  // The label's quote and backslash must be escaped.
  EXPECT_NE(json.find("say \\\"hi\\\"\\\\path"), std::string::npos);
  // Brace balance is a cheap structural check; CI json-validates for real.
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(FidelityAuditor, HumanReportNamesVerdictAndBreaches) {
  const core::ReplayTrace reference = core::ReplayTrace::load(
      std::string(TRACEMOD_REPO_DIR) + "/porter_replay.trace");
  AuditConfig cfg = quick_config();
  cfg.second_order.emulator.modulation.tick = sim::milliseconds(20);
  const FidelityReport r = audit_trace(reference, cfg, "drill");
  std::ostringstream out;
  write_fidelity_report(out, r);
  const std::string text = out.str();
  EXPECT_NE(text.find("fidelity audit: drill"), std::string::npos);
  EXPECT_NE(text.find("verdict: breach"), std::string::npos);
  EXPECT_NE(text.find("breach: "), std::string::npos);
  EXPECT_NE(text.find("latency rel err"), std::string::npos);
}

}  // namespace
}  // namespace tracemod::audit
