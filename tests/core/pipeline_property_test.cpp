// The methodology's fixed-point property, swept across network regimes:
// distilling a trace collected *on a modulated network* recovers the
// replay parameters that drove the modulation (within the estimator's
// tolerance).  This closes the loop between all three phases.
#include <gtest/gtest.h>

#include <memory>

#include "core/distiller.hpp"
#include "core/emulator.hpp"
#include "trace/ping.hpp"
#include "trace/trace_tap.hpp"

namespace tracemod::core {
namespace {

struct Regime {
  const char* name;
  double latency_s;
  double bandwidth_bps;
  double loss;
};

class PipelineFixedPoint : public ::testing::TestWithParam<Regime> {};

TEST_P(PipelineFixedPoint, DistillRecoversModulationParameters) {
  const Regime regime = GetParam();

  ModulationConfig mod;
  mod.tick = sim::Duration{0};  // isolate estimation from tick quantization
  EmulatorConfig cfg;
  cfg.modulation = mod;
  cfg.modulation.inbound_vb_compensation = Emulator::measure_physical_vb();
  Emulator emulator(
      ReplayTrace::constant(sim::seconds(400), sim::seconds(1),
                            regime.latency_s, regime.bandwidth_bps,
                            regime.loss),
      cfg);

  sim::ClockModel clock;
  trace::TraceTap* tap = nullptr;
  emulator.mobile().node().wrap_interface(
      0, [&](std::unique_ptr<net::NetDevice> inner) {
        auto t = std::make_unique<trace::TraceTap>(std::move(inner),
                                                   emulator.loop(), clock,
                                                   nullptr);
        tap = t.get();
        return t;
      });
  trace::CollectionDaemon daemon(emulator.loop(), *tap);
  trace::PingWorkload ping(emulator.mobile(), cfg.server_addr, clock);
  daemon.start();
  ping.start();
  emulator.run_for(sim::seconds(300));
  ping.stop();
  daemon.stop();

  Distiller distiller;
  const ReplayTrace recovered = distiller.distill(daemon.trace());
  ASSERT_FALSE(recovered.empty()) << regime.name;

  // Latency within 35% or 1.5 ms (the modulating Ethernet adds a little).
  EXPECT_NEAR(recovered.mean_latency_s(), regime.latency_s,
              std::max(regime.latency_s * 0.35, 0.0015))
      << regime.name;
  // Bottleneck bandwidth within 25%.
  const double recovered_bw = 8.0 / recovered.mean_bottleneck_per_byte();
  EXPECT_NEAR(recovered_bw, regime.bandwidth_bps,
              regime.bandwidth_bps * 0.25)
      << regime.name;
  // Round-trip loss estimate within 4 percentage points.
  EXPECT_NEAR(recovered.mean_loss(), regime.loss, 0.04) << regime.name;
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, PipelineFixedPoint,
    ::testing::Values(Regime{"wavelan", 0.003, 1.5e6, 0.00},
                      Regime{"wavelan_lossy", 0.003, 1.5e6, 0.05},
                      Regime{"slow_link", 0.020, 250e3, 0.00},
                      Regime{"high_latency", 0.060, 1.0e6, 0.02},
                      Regime{"fast_clean", 0.001, 3.0e6, 0.00}),
    [](const ::testing::TestParamInfo<Regime>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace tracemod::core
