#include "core/replay_device.hpp"

#include <gtest/gtest.h>

namespace tracemod::core {
namespace {

QualityTuple tuple(double f) {
  return QualityTuple{sim::seconds(1), f, 0, 0, 0};
}

TEST(ReplayPseudoDevice, FifoReadWrite) {
  ReplayPseudoDevice dev(4);
  EXPECT_TRUE(dev.write(tuple(0.001)));
  EXPECT_TRUE(dev.write(tuple(0.002)));
  auto a = dev.read();
  ASSERT_TRUE(a.has_value());
  EXPECT_DOUBLE_EQ(a->latency_s, 0.001);
  EXPECT_DOUBLE_EQ(dev.read()->latency_s, 0.002);
  EXPECT_FALSE(dev.read().has_value());
}

TEST(ReplayPseudoDevice, WriteFailsWhenFull) {
  ReplayPseudoDevice dev(2);
  EXPECT_TRUE(dev.write(tuple(1)));
  EXPECT_TRUE(dev.write(tuple(2)));
  EXPECT_FALSE(dev.write(tuple(3)));
  dev.read();
  EXPECT_TRUE(dev.write(tuple(3)));
}

TEST(ModulationDaemon, FeedsWholeTraceThenCloses) {
  sim::EventLoop loop;
  ReplayPseudoDevice dev(128);
  ModulationDaemon daemon(loop, dev,
                          ReplayTrace::constant(sim::seconds(10),
                                                sim::seconds(1), 0.001, 1e6, 0),
                          /*loop_trace=*/false);
  daemon.start();
  loop.run();
  EXPECT_TRUE(daemon.finished());
  EXPECT_TRUE(dev.writer_closed());
  EXPECT_EQ(dev.size(), 10u);
}

TEST(ModulationDaemon, BlocksOnFullBufferAndResumes) {
  sim::EventLoop loop;
  ReplayPseudoDevice dev(4);  // smaller than the trace
  ModulationDaemon daemon(loop, dev,
                          ReplayTrace::constant(sim::seconds(10),
                                                sim::seconds(1), 0.001, 1e6, 0),
                          false);
  daemon.start();
  EXPECT_EQ(dev.size(), 4u);       // filled to capacity, daemon now blocked
  EXPECT_FALSE(daemon.finished());

  // The kernel reads two tuples; the daemon's next wakeup refills.
  EXPECT_TRUE(dev.read().has_value());
  EXPECT_TRUE(dev.read().has_value());
  loop.run_until(loop.now() + sim::milliseconds(150));
  EXPECT_EQ(dev.size(), 4u);

  // Keep draining until the whole trace has passed through.
  int consumed = 2;
  while (!daemon.finished() || !dev.empty()) {
    while (dev.read().has_value()) ++consumed;
    loop.run_until(loop.now() + sim::milliseconds(150));
  }
  EXPECT_EQ(consumed, 10);
  EXPECT_TRUE(dev.writer_closed());
}

TEST(ModulationDaemon, LoopModeRefillsForever) {
  sim::EventLoop loop;
  ReplayPseudoDevice dev(8);
  ModulationDaemon daemon(loop, dev,
                          ReplayTrace::constant(sim::seconds(3),
                                                sim::seconds(1), 0.001, 1e6, 0),
                          /*loop_trace=*/true);
  daemon.start();
  int consumed = 0;
  for (int round = 0; round < 10; ++round) {
    while (dev.read().has_value()) ++consumed;
    loop.run_until(loop.now() + sim::milliseconds(150));
  }
  EXPECT_GT(consumed, 20);  // far more than the 3-tuple file
  EXPECT_FALSE(daemon.finished());
  EXPECT_FALSE(dev.writer_closed());
  daemon.stop();
}

TEST(ModulationDaemon, EmptyTraceFinishesImmediately) {
  sim::EventLoop loop;
  ReplayPseudoDevice dev(8);
  ModulationDaemon daemon(loop, dev, ReplayTrace{}, false);
  daemon.start();
  EXPECT_TRUE(daemon.finished());
  EXPECT_TRUE(dev.writer_closed());
}

}  // namespace
}  // namespace tracemod::core
