#include "core/modulation.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/replay_device.hpp"
#include "net/node.hpp"
#include "net/device.hpp"

namespace tracemod::core {
namespace {

/// A sink device that records transmitted packets and can inject inbound
/// ones -- lets us test the modulation layer in isolation.
class SinkDevice : public net::NetDevice {
 public:
  void transmit(net::Packet pkt) override {
    sent.push_back(std::move(pkt));
    sent_at.push_back(now ? *now : sim::kEpoch);
  }
  std::string name() const override { return "sink"; }
  void inject(net::Packet pkt) { deliver_up(std::move(pkt)); }

  std::vector<net::Packet> sent;
  std::vector<sim::TimePoint> sent_at;
  const sim::TimePoint* now = nullptr;
};

struct Rig {
  sim::EventLoop loop;
  ReplayPseudoDevice device{64};
  SinkDevice* sink = nullptr;
  std::unique_ptr<ModulationLayer> layer;
  std::vector<net::Packet> delivered_up;
  std::vector<sim::TimePoint> up_at;
  sim::TimePoint now_snapshot{};

  explicit Rig(ModulationConfig cfg = {}) {
    auto sink_dev = std::make_unique<SinkDevice>();
    sink = sink_dev.get();
    layer = std::make_unique<ModulationLayer>(std::move(sink_dev), loop,
                                              device, cfg);
    layer->set_receive_callback([this](net::Packet p) {
      delivered_up.push_back(std::move(p));
      up_at.push_back(loop.now());
    });
  }

  net::Packet packet(std::uint32_t payload) {
    net::Packet p = net::make_udp_packet(net::IpAddress(10, 0, 0, 1),
                                         net::IpAddress(10, 0, 0, 2), 1, 2,
                                         payload);
    p.id = next_id_++;  // no Node in this rig; any unique id will do
    return p;
  }

  std::uint64_t next_id_ = 1;

  void feed(QualityTuple t) { ASSERT_TRUE(device.write(t)); }
};

TEST(Modulation, PassThroughWithoutTuples) {
  Rig rig;
  rig.layer->transmit(rig.packet(100));
  rig.loop.run();
  ASSERT_EQ(rig.sink->sent.size(), 1u);
  EXPECT_EQ(rig.layer->stats().passed_unmodulated, 1u);
}

TEST(Modulation, OutboundDelayMatchesModel) {
  ModulationConfig cfg;
  cfg.tick = sim::Duration{0};  // ideal clock isolates the arithmetic
  Rig rig(cfg);
  // F=10 ms, Vb=5 us/B, Vr=1 us/B, no loss.
  rig.feed(QualityTuple{sim::seconds(60), 0.010, 5e-6, 1e-6, 0.0});

  net::Packet p = rig.packet(972);  // ip_size = 1000
  const std::uint32_t s = p.ip_size();
  ASSERT_EQ(s, 1000u);
  rig.layer->transmit(std::move(p));
  rig.loop.run();
  ASSERT_EQ(rig.sink->sent.size(), 1u);
  // Delay = s*Vb (bottleneck) + F + s*Vr.
  const double expect = 1000 * 5e-6 + 0.010 + 1000 * 1e-6;
  EXPECT_NEAR(sim::to_seconds(rig.loop.now()), expect, 1e-9);
}

TEST(Modulation, BottleneckSerializesBackToBackPackets) {
  ModulationConfig cfg;
  cfg.tick = sim::Duration{0};
  Rig rig(cfg);
  rig.feed(QualityTuple{sim::seconds(60), 0.001, 10e-6, 0.0, 0.0});

  // Three 1000-byte packets at t=0: releases must be s*Vb = 10 ms apart.
  for (int i = 0; i < 3; ++i) rig.layer->transmit(rig.packet(972));
  std::vector<sim::TimePoint> releases;
  // Drain the loop; the sink records no time, so track via loop stepping.
  while (rig.loop.step()) releases.push_back(rig.loop.now());
  ASSERT_EQ(rig.sink->sent.size(), 3u);
  ASSERT_EQ(releases.size(), 3u);
  EXPECT_NEAR(sim::to_seconds(releases[1] - releases[0]), 0.010, 1e-9);
  EXPECT_NEAR(sim::to_seconds(releases[2] - releases[1]), 0.010, 1e-9);
}

TEST(Modulation, InboundAndOutboundShareTheBottleneck) {
  ModulationConfig cfg;
  cfg.tick = sim::Duration{0};
  Rig rig(cfg);
  rig.feed(QualityTuple{sim::seconds(60), 0.0, 10e-6, 0.0, 0.0});

  // An outbound 1000 B packet followed immediately by an inbound one: the
  // inbound must queue behind the outbound in the unified queue.
  rig.layer->transmit(rig.packet(972));
  rig.sink->inject(rig.packet(972));
  rig.loop.run();
  ASSERT_EQ(rig.delivered_up.size(), 1u);
  EXPECT_NEAR(sim::to_seconds(rig.up_at[0]), 0.020, 1e-9);  // 2 x 10 ms
}

TEST(Modulation, DropsAreRandomAtRateL) {
  ModulationConfig cfg;
  cfg.tick = sim::Duration{0};
  Rig rig(cfg);
  // Zero delay, 30% loss: count survivors.
  rig.feed(QualityTuple{sim::seconds(3600), 0.0, 0.0, 0.0, 0.3});
  const int n = 5000;
  for (int i = 0; i < n; ++i) rig.layer->transmit(rig.packet(100));
  rig.loop.run();
  const double survived =
      static_cast<double>(rig.sink->sent.size()) / n;
  EXPECT_NEAR(survived, 0.7, 0.03);
  EXPECT_EQ(rig.layer->stats().dropped + rig.sink->sent.size(),
            static_cast<std::uint64_t>(n));
}

TEST(Modulation, DroppedPacketsStillConsumeBottleneck) {
  ModulationConfig cfg;
  cfg.tick = sim::Duration{0};
  Rig rig(cfg);
  rig.feed(QualityTuple{sim::milliseconds(10), 0.0, 10e-6, 0.0, 1.0});
  rig.feed(QualityTuple{sim::seconds(60), 0.0, 10e-6, 0.0, 0.0});

  // Two doomed packets at t=0 occupy the bottleneck for 20 ms total.
  rig.layer->transmit(rig.packet(972));
  rig.layer->transmit(rig.packet(972));
  rig.loop.run_until(sim::kEpoch + sim::milliseconds(12));
  EXPECT_EQ(rig.layer->stats().dropped, 2u);
  // Now in the lossless segment: the probe still waits behind the ghosts.
  rig.layer->transmit(rig.packet(972));
  rig.loop.run();
  ASSERT_EQ(rig.sink->sent.size(), 1u);
  // Probe entered at 12 ms but released at 30 ms (ghosts end 20 + own 10).
  EXPECT_NEAR(sim::to_seconds(rig.loop.now()), 0.030, 1e-6);
}

TEST(Modulation, TickQuantizationRoundsToNearestTick) {
  ModulationConfig cfg;
  cfg.tick = sim::milliseconds(10);
  Rig rig(cfg);
  // Delay = 12 ms -> quantizes to the 10 ms tick grid (nearest).
  rig.feed(QualityTuple{sim::seconds(60), 0.012, 0.0, 0.0, 0.0});
  rig.layer->transmit(rig.packet(100));
  rig.loop.run();
  const double released = sim::to_seconds(rig.loop.now());
  EXPECT_NEAR(released, 0.010, 1e-9);
  EXPECT_EQ(rig.layer->stats().scheduled, 1u);
}

TEST(Modulation, SubHalfTickSendsImmediately) {
  ModulationConfig cfg;
  cfg.tick = sim::milliseconds(10);
  Rig rig(cfg);
  rig.feed(QualityTuple{sim::seconds(60), 0.004, 0.0, 0.0, 0.0});  // 4 ms < 5
  rig.layer->transmit(rig.packet(100));
  // Released synchronously: no events needed.
  ASSERT_EQ(rig.sink->sent.size(), 1u);
  EXPECT_EQ(rig.layer->stats().sent_immediately, 1u);
  EXPECT_EQ(rig.loop.now(), sim::kEpoch);
}

TEST(Modulation, InboundCompensationSubtractsPhysicalVb) {
  ModulationConfig cfg;
  cfg.tick = sim::Duration{0};
  cfg.inbound_physical_vb = 2e-6;   // endpoint artifact
  cfg.inbound_vb_compensation = 2e-6;  // exactly cancelled
  Rig rig(cfg);
  rig.feed(QualityTuple{sim::seconds(60), 0.0, 10e-6, 0.0, 0.0});
  rig.sink->inject(rig.packet(972));
  rig.loop.run();
  ASSERT_EQ(rig.delivered_up.size(), 1u);
  EXPECT_NEAR(sim::to_seconds(rig.up_at[0]), 0.010, 1e-9);
}

TEST(Modulation, UncompensatedInboundPaysTheArtifact) {
  ModulationConfig cfg;
  cfg.tick = sim::Duration{0};
  cfg.inbound_physical_vb = 2e-6;
  Rig rig(cfg);
  rig.feed(QualityTuple{sim::seconds(60), 0.0, 10e-6, 0.0, 0.0});
  rig.sink->inject(rig.packet(972));
  rig.loop.run();
  EXPECT_NEAR(sim::to_seconds(rig.up_at[0]), 0.012, 1e-9);  // Vb + artifact
}

TEST(Modulation, CompensationNeverGoesNegative) {
  ModulationConfig cfg;
  cfg.tick = sim::Duration{0};
  cfg.inbound_vb_compensation = 1.0;  // absurdly large
  Rig rig(cfg);
  rig.feed(QualityTuple{sim::seconds(60), 0.001, 10e-6, 0.0, 0.0});
  rig.sink->inject(rig.packet(972));
  rig.loop.run();
  // Effective inbound Vb clamps at 0; only F remains.
  EXPECT_NEAR(sim::to_seconds(rig.up_at[0]), 0.001, 1e-9);
}

TEST(Modulation, TuplesAdvanceWithEmulatedTime) {
  ModulationConfig cfg;
  cfg.tick = sim::Duration{0};
  Rig rig(cfg);
  rig.feed(QualityTuple{sim::seconds(1), 0.001, 0.0, 0.0, 0.0});
  rig.feed(QualityTuple{sim::seconds(1), 0.050, 0.0, 0.0, 0.0});

  rig.layer->transmit(rig.packet(100));  // segment 1: 1 ms
  rig.loop.run();
  const double first = sim::to_seconds(rig.loop.now());
  EXPECT_NEAR(first, 0.001, 1e-9);

  rig.loop.run_until(sim::kEpoch + sim::milliseconds(1500));
  rig.layer->transmit(rig.packet(100));  // segment 2: 50 ms
  rig.loop.run();
  EXPECT_NEAR(sim::to_seconds(rig.loop.now()), 1.55, 1e-9);
  EXPECT_EQ(rig.layer->stats().tuples_consumed, 2u);
}

TEST(Modulation, RevertsToPassThroughWhenTraceEndsAndWriterClosed) {
  ModulationConfig cfg;
  cfg.tick = sim::Duration{0};
  Rig rig(cfg);
  rig.feed(QualityTuple{sim::seconds(1), 0.050, 0.0, 0.0, 0.0});
  rig.device.close_writer();

  rig.layer->transmit(rig.packet(100));
  rig.loop.run();
  EXPECT_EQ(rig.layer->stats().modulated_out, 1u);

  // Past the only segment: modulation is over.
  rig.loop.run_until(sim::kEpoch + sim::seconds(2));
  rig.layer->transmit(rig.packet(100));
  rig.loop.run();
  EXPECT_EQ(rig.layer->stats().passed_unmodulated, 1u);
  EXPECT_EQ(rig.sink->sent.size(), 2u);
}

TEST(Modulation, HoldsTupleWhileDaemonMerelyBehind) {
  ModulationConfig cfg;
  cfg.tick = sim::Duration{0};
  Rig rig(cfg);
  rig.feed(QualityTuple{sim::seconds(1), 0.020, 0.0, 0.0, 0.0});
  // Writer NOT closed: layer holds the stale tuple.
  rig.loop.run_until(sim::kEpoch + sim::seconds(5));
  rig.layer->transmit(rig.packet(100));
  rig.loop.run();
  EXPECT_EQ(rig.layer->stats().modulated_out, 1u);
  EXPECT_NEAR(sim::to_seconds(rig.loop.now()), 5.020, 1e-9);
}

// ---- property sweep: long-run throughput equals the tuple's bandwidth ----

class ModulationThroughput : public ::testing::TestWithParam<double> {};

TEST_P(ModulationThroughput, MatchesConfiguredBottleneck) {
  const double bw_bps = GetParam();
  ModulationConfig cfg;
  cfg.tick = sim::milliseconds(10);  // the real tick must not distort this
  Rig rig(cfg);
  rig.feed(QualityTuple{sim::seconds(3600), 0.003, 8.0 / bw_bps, 0.0, 0.0});

  const int n = 400;
  const std::uint32_t payload = 1372;  // ip_size = 1400
  for (int i = 0; i < n; ++i) rig.layer->transmit(rig.packet(payload));
  rig.loop.run();
  const double elapsed = sim::to_seconds(rig.loop.now());
  const double throughput = n * 1400 * 8.0 / elapsed;
  EXPECT_NEAR(throughput, bw_bps, bw_bps * 0.02);
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, ModulationThroughput,
                         ::testing::Values(128e3, 500e3, 1.5e6, 2e6, 10e6));

}  // namespace
}  // namespace tracemod::core
