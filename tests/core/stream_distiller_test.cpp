// The streaming-distillation contract (core/stream_distiller.hpp,
// DESIGN.md section 12): the windowed two-pass pipeline is bit-identical
// to the in-memory distiller -- clean or damaged, serial or parallel;
// damage spanning a window boundary marks both windows and never aborts;
// a damaged or torn checkpoint journal costs only the affected windows a
// re-distillation while the output stays byte-identical; budget shedding
// degrades delay but never perturbs loss; and every window maps onto an
// audit verdict that is pass or unauditable, never a breach.
#include "core/stream_distiller.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "audit/auditor.hpp"
#include "core/distiller.hpp"
#include "sim/io/fault_plan.hpp"
#include "sim/random.hpp"
#include "trace/fault_injector.hpp"
#include "trace/stream_reader.hpp"
#include "trace/synthetic_corpus.hpp"
#include "trace/trace_io.hpp"

namespace tracemod::core {
namespace {

std::string tmp(const std::string& name) {
  return testing::TempDir() + "tracemod_stream_distiller_" + name;
}

/// Writes a ~2-window synthetic ping corpus and returns its path.
std::string make_corpus(const std::string& name, double reply_loss = 0.02,
                        sim::Duration duration = sim::seconds(150)) {
  const std::string path = tmp(name);
  trace::CorpusSpec spec;
  spec.duration = duration;
  spec.reply_loss = reply_loss;
  spec.seed = 42;
  trace::generate_ping_corpus(path, spec);
  return path;
}

std::string serialize(const ReplayTrace& replay) {
  std::ostringstream out;
  replay.serialize(out);
  return out.str();
}

/// The reference result: slurp the whole file (salvage mode) and run the
/// in-memory distiller -- the arithmetic the stream must reproduce.
std::string in_memory_reference(const std::string& path) {
  trace::TraceReadOptions ropts;
  ropts.mode = trace::ReadMode::kSalvage;
  const trace::TraceReadResult loaded = trace::load_trace_ex(path, ropts);
  Distiller distiller;
  return serialize(distiller.distill(loaded.trace));
}

StreamDistillResult stream_distill(const std::string& path,
                                   StreamDistillConfig cfg = {}) {
  StreamDistiller distiller(cfg);
  return distiller.distill_file(path);
}

TEST(StreamDistiller, BitIdenticalToInMemoryOnCleanTrace) {
  const std::string path = make_corpus("clean.tmtr");
  const std::string reference = in_memory_reference(path);

  StreamDistillConfig cfg;
  cfg.threads = 1;
  const auto serial = stream_distill(path, cfg);
  EXPECT_EQ(serial.status, DistillStatus::kOk);
  EXPECT_EQ(serialize(serial.replay), reference);

  cfg.threads = 4;
  const auto parallel = stream_distill(path, cfg);
  EXPECT_EQ(serialize(parallel.replay), reference);

  // Window accounting covers the whole corpus exactly once.
  EXPECT_GE(serial.stats.windows_total, 2u);
  EXPECT_EQ(serial.stats.windows_damaged, 0u);
  EXPECT_EQ(serial.stats.windows_shed, 0u);
  std::uint64_t records = 0;
  for (const WindowSummary& w : serial.windows) {
    EXPECT_LT(w.begin_offset, w.end_offset);
    records += w.records;
  }
  EXPECT_EQ(records, serial.stats.records_streamed);
  std::filesystem::remove(path);
}

TEST(StreamDistiller, BitIdenticalToInMemorySalvageOnDamagedTrace) {
  const std::string path = make_corpus("damaged.tmtr");
  trace::FaultInjector inject{sim::Rng(9)};
  const std::uint64_t size = std::filesystem::file_size(path);
  // Keep the header intact: salvage cannot survive header damage, and the
  // in-memory reference would refuse the file entirely.
  inject.flip_file_range(path, 10, 512, size);

  const std::string reference = in_memory_reference(path);
  const auto streamed = stream_distill(path);
  EXPECT_EQ(streamed.status, DistillStatus::kSalvaged);
  EXPECT_FALSE(streamed.read_report.clean());
  EXPECT_GT(streamed.stats.windows_damaged, 0u);
  EXPECT_EQ(serialize(streamed.replay), reference);
  std::filesystem::remove(path);
}

TEST(StreamDistiller, DamageSpanningTwoWindowsMarksBothAndNeverAborts) {
  const std::string path = make_corpus("boundary.tmtr");

  // First pass on the clean file to learn the window boundary offsets.
  const auto clean = stream_distill(path);
  ASSERT_GE(clean.windows.size(), 2u);
  const std::uint64_t boundary = clean.windows[1].begin_offset;
  ASSERT_EQ(clean.windows[0].end_offset, boundary);

  // Straddle the boundary: flips on both sides of it corrupt frames in
  // window 0 and window 1.
  trace::FaultInjector inject{sim::Rng(5)};
  inject.flip_file_range(path, 16, boundary - 600, boundary + 600);

  const auto damaged = stream_distill(path);
  EXPECT_EQ(damaged.status, DistillStatus::kSalvaged);
  ASSERT_GE(damaged.windows.size(), 2u);
  EXPECT_TRUE(damaged.windows[0].damaged);
  EXPECT_TRUE(damaged.windows[1].damaged);
  // Salvage still matches the in-memory distiller on the damaged bytes.
  EXPECT_EQ(serialize(damaged.replay), in_memory_reference(path));
  std::filesystem::remove(path);
}

TEST(StreamDistiller, ResumeFromJournalIsByteIdentical) {
  const std::string path = make_corpus("resume.tmtr");
  const std::string journal = tmp("resume.tmdj");

  StreamDistillConfig cfg;
  cfg.checkpoint_path = journal;
  const auto first = stream_distill(path, cfg);
  ASSERT_GE(first.stats.windows_total, 2u);
  EXPECT_EQ(first.stats.windows_resumed, 0u);

  cfg.resume = true;
  const auto resumed = stream_distill(path, cfg);
  EXPECT_EQ(resumed.stats.windows_resumed, resumed.stats.windows_total);
  EXPECT_EQ(serialize(resumed.replay), serialize(first.replay));
  for (const WindowSummary& w : resumed.windows) EXPECT_TRUE(w.resumed);

  std::filesystem::remove(path);
  std::filesystem::remove(journal);
}

TEST(StreamDistiller, DamagedJournalFrameRecomputesOnlyThatWindow) {
  const std::string path = make_corpus("journal_damage.tmtr");
  const std::string journal = tmp("journal_damage.tmdj");

  StreamDistillConfig cfg;
  cfg.checkpoint_path = journal;
  const auto first = stream_distill(path, cfg);
  ASSERT_GE(first.stats.windows_total, 2u);

  // Corrupt the tail of the journal: the last window frame fails its
  // checksum and is skipped; the plan and earlier windows stay intact.
  const std::uint64_t jsize = std::filesystem::file_size(journal);
  trace::FaultInjector inject{sim::Rng(3)};
  inject.flip_file_range(journal, 4, jsize - 32, jsize);

  cfg.resume = true;
  const auto resumed = stream_distill(path, cfg);
  EXPECT_GT(resumed.stats.windows_resumed, 0u);
  EXPECT_LT(resumed.stats.windows_resumed, resumed.stats.windows_total);
  EXPECT_EQ(serialize(resumed.replay), serialize(first.replay));

  std::filesystem::remove(path);
  std::filesystem::remove(journal);
}

TEST(StreamDistiller, TruncatedJournalResumesByteIdentical) {
  // The kill drill: a SIGKILL mid-append leaves a torn trailing frame.
  // Resume must drop the tail, reuse what checksums, and reproduce the
  // uninterrupted output bit for bit.
  const std::string path = make_corpus("kill.tmtr");
  const std::string journal = tmp("kill.tmdj");

  StreamDistillConfig cfg;
  cfg.checkpoint_path = journal;
  const auto first = stream_distill(path, cfg);
  ASSERT_GE(first.stats.windows_total, 2u);

  const std::uint64_t jsize = std::filesystem::file_size(journal);
  std::filesystem::resize_file(journal, jsize - 15);

  cfg.resume = true;
  const auto resumed = stream_distill(path, cfg);
  EXPECT_LT(resumed.stats.windows_resumed, resumed.stats.windows_total);
  EXPECT_EQ(serialize(resumed.replay), serialize(first.replay));

  // And a journal for a *different* input must be rejected outright: the
  // fingerprint covers file size and leading bytes, so nothing resumes.
  const std::string other = make_corpus("kill_other.tmtr", 0.10);
  StreamDistillConfig ocfg;
  ocfg.checkpoint_path = journal;
  ocfg.resume = true;
  const auto fresh = stream_distill(other, ocfg);
  EXPECT_EQ(fresh.stats.windows_resumed, 0u);

  std::filesystem::remove(path);
  std::filesystem::remove(other);
  std::filesystem::remove(journal);
}

TEST(StreamDistiller, CheckpointEnospcDegradesResumabilityNeverTheOutput) {
  // The disk fills while the checkpoint journal is being written.  The
  // degradation contract: the run keeps computing and its output is
  // byte-identical to a checkpoint-less run; only resumability is lost,
  // surfaced via stats.checkpoint_degraded (drivers exit 5).
  const std::string path = make_corpus("enospc.tmtr");
  const std::string reference = serialize(stream_distill(path).replay);

  const std::string journal = tmp("enospc.tmdj");
  sim::io::FaultPlanConfig fcfg;
  fcfg.enospc_after_bytes = 64;  // the 10-byte header fits; no frame does
  sim::io::FaultPlan plan(fcfg);
  StreamDistillConfig cfg;
  cfg.checkpoint_path = journal;
  cfg.checkpoint_fault_plan = &plan;
  const auto starved = stream_distill(path, cfg);

  EXPECT_TRUE(starved.stats.checkpoint_degraded);
  EXPECT_EQ(starved.status, DistillStatus::kOk);  // output fidelity intact
  EXPECT_EQ(serialize(starved.replay), reference);

  // What remains on disk is an intact prefix the tolerant reader accepts
  // without reusing anything it cannot vouch for.
  std::ifstream in(journal, std::ios::binary);
  ASSERT_TRUE(in.good());
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes.size(), 10u);  // header only; the failed frame truncated
  EXPECT_EQ(probe_checkpoint_journal(bytes.data(), bytes.size()), 0u);

  // A resume against the degraded journal recomputes and still agrees.
  StreamDistillConfig rcfg;
  rcfg.checkpoint_path = journal;
  rcfg.resume = true;
  const auto resumed = stream_distill(path, rcfg);
  EXPECT_EQ(resumed.stats.windows_resumed, 0u);
  EXPECT_EQ(serialize(resumed.replay), reference);

  std::filesystem::remove(path);
  std::filesystem::remove(journal);
}

TEST(StreamDistiller, CheckpointCrashAtEverySyscallNeverChangesTheOutput) {
  // Kill the checkpoint plane at every syscall of its life.  For each
  // crash point: the distilled output matches the reference bit for bit,
  // the journal wreckage probes without crashing, and a resume against
  // the wreckage reproduces the reference.
  const std::string path = make_corpus("ckpt_crash.tmtr");
  const std::string reference = serialize(stream_distill(path).replay);

  for (std::uint64_t crash_at = 1; crash_at <= 10; ++crash_at) {
    const std::string journal =
        tmp("ckpt_crash_" + std::to_string(crash_at) + ".tmdj");
    sim::io::FaultPlanConfig fcfg;
    fcfg.seed = crash_at;
    fcfg.crash_at_op = crash_at;
    sim::io::FaultPlan plan(fcfg);

    StreamDistillConfig cfg;
    cfg.threads = 1;  // serial appends keep the op schedule deterministic
    cfg.checkpoint_path = journal;
    cfg.checkpoint_fault_plan = &plan;
    const auto crashed = stream_distill(path, cfg);
    EXPECT_EQ(serialize(crashed.replay), reference) << "op " << crash_at;
    EXPECT_EQ(crashed.stats.checkpoint_degraded, plan.crashed())
        << "op " << crash_at;

    std::ifstream in(journal, std::ios::binary);
    if (in.good()) {
      const std::string bytes((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
      // Must classify without crashing, throwing, or misreading frames.
      (void)probe_checkpoint_journal(bytes.data(), bytes.size());
    }

    StreamDistillConfig rcfg;
    rcfg.checkpoint_path = journal;
    rcfg.resume = true;
    const auto resumed = stream_distill(path, rcfg);
    EXPECT_EQ(serialize(resumed.replay), reference) << "op " << crash_at;

    std::filesystem::remove(journal);
  }
  std::filesystem::remove(path);
}

TEST(StreamDistiller, BudgetSheddingDegradesButNeverPerturbsLoss) {
  const std::string path = make_corpus("budget.tmtr", 0.05);
  const auto full = stream_distill(path);
  ASSERT_EQ(full.status, DistillStatus::kOk);
  ASSERT_GT(full.stats.retained_bytes, 0u);

  // Budget for roughly half the echo projections, one window in flight:
  // the deterministic shed plan keeps the early windows and sheds the
  // rest once the cumulative retained bytes cross the budget.
  StreamDistillConfig cfg;
  cfg.budget.bytes = full.stats.retained_bytes / 2;
  cfg.budget.max_inflight = 1;
  const auto shed = stream_distill(path, cfg);
  EXPECT_EQ(shed.status, DistillStatus::kDegraded);
  EXPECT_GT(shed.stats.windows_shed, 0u);
  EXPECT_LT(shed.stats.windows_shed, shed.stats.windows_total);
  EXPECT_LE(shed.stats.retained_bytes, cfg.budget.bytes);

  // The loss lattice is final after pass 1: shedding drops delay samples,
  // never loss.  Same step count, same loss column.
  ASSERT_EQ(shed.replay.tuples().size(), full.replay.tuples().size());
  for (std::size_t i = 0; i < full.replay.tuples().size(); ++i) {
    EXPECT_EQ(shed.replay.tuples()[i].loss, full.replay.tuples()[i].loss)
        << "step " << i;
  }
  std::filesystem::remove(path);
}

TEST(StreamDistiller, EmptyTraceDistillsToEmptyReplay) {
  const std::string path = tmp("empty.tmtr");
  {
    trace::TraceStreamWriter writer(path);
    writer.finalize();
  }
  const auto result = stream_distill(path);
  EXPECT_EQ(result.status, DistillStatus::kOk);
  EXPECT_EQ(result.stats.records_streamed, 0u);
  EXPECT_TRUE(result.replay.tuples().empty());
  std::filesystem::remove(path);
}

TEST(StreamDistiller, MissingFileThrowsRuntimeError) {
  EXPECT_THROW(stream_distill(tmp("nonexistent.tmtr")), std::runtime_error);
}

TEST(WindowVerdict, DamagedOrShedIsUnauditableNeverBreach) {
  WindowSummary clean;
  EXPECT_EQ(audit::window_verdict(clean), audit::Verdict::kPass);

  WindowSummary damaged;
  damaged.damaged = true;
  EXPECT_EQ(audit::window_verdict(damaged), audit::Verdict::kUnauditable);

  WindowSummary shed;
  shed.shed = true;
  EXPECT_EQ(audit::window_verdict(shed), audit::Verdict::kUnauditable);

  WindowSummary both;
  both.damaged = both.shed = true;
  EXPECT_EQ(audit::window_verdict(both), audit::Verdict::kUnauditable);

  // Exhaustive: no WindowSummary state can produce kBreach.
  for (int d = 0; d < 2; ++d) {
    for (int s = 0; s < 2; ++s) {
      WindowSummary w;
      w.damaged = d != 0;
      w.shed = s != 0;
      EXPECT_NE(audit::window_verdict(w), audit::Verdict::kBreach);
    }
  }
}

TEST(JournalProbe, ToleratesArbitraryBytes) {
  // The fuzz surface, pinned deterministically: torn, lying, and hostile
  // inputs parse to zero-or-more intact frames without crash or throw.
  EXPECT_EQ(probe_checkpoint_journal(nullptr, 0), 0u);
  const std::string junk = "TMDJ\x01\x00\xff\xff\xff\xff not a journal";
  EXPECT_EQ(probe_checkpoint_journal(junk.data(), junk.size()), 0u);
  // A length prefix claiming 4 GB on a 32-byte input must not allocate.
  std::string lying = "TMDJ";
  lying.append("\x01\x00\xde\xad\xbe\xef", 6);
  lying.push_back('\x02');                      // window frame
  lying.append("\xff\xff\xff\xff", 4);          // len: 4 GB
  lying.append("\x00\x00\x00\x00", 4);          // crc
  lying.append(16, '\x00');
  EXPECT_EQ(probe_checkpoint_journal(lying.data(), lying.size()), 0u);
}

}  // namespace
}  // namespace tracemod::core
