#include "core/model.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

namespace tracemod::core {
namespace {

TEST(QualityTuple, OneWayDelayIsLinearInSize) {
  QualityTuple t{sim::seconds(1), 0.003, 5e-6, 1e-6, 0.0};
  EXPECT_DOUBLE_EQ(t.one_way_delay_s(0), 0.003);
  EXPECT_DOUBLE_EQ(t.one_way_delay_s(1000), 0.003 + 1000 * 6e-6);
}

TEST(QualityTuple, BottleneckBandwidthInverse) {
  QualityTuple t{sim::seconds(1), 0.0, 4e-6, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(t.bottleneck_bandwidth_bps(), 2e6);
  QualityTuple z{};
  EXPECT_DOUBLE_EQ(z.bottleneck_bandwidth_bps(), 0.0);
}

TEST(ReplayTrace, AtOffsetWalksSegments) {
  ReplayTrace trace({
      QualityTuple{sim::seconds(2), 0.001, 1e-6, 0, 0},
      QualityTuple{sim::seconds(3), 0.002, 2e-6, 0, 0},
  });
  EXPECT_DOUBLE_EQ(trace.at_offset(sim::seconds(0)).latency_s, 0.001);
  EXPECT_DOUBLE_EQ(trace.at_offset(sim::milliseconds(1999)).latency_s, 0.001);
  EXPECT_DOUBLE_EQ(trace.at_offset(sim::seconds(2)).latency_s, 0.002);
  // Past the end: clamps to the last tuple.
  EXPECT_DOUBLE_EQ(trace.at_offset(sim::seconds(100)).latency_s, 0.002);
  EXPECT_EQ(trace.total_duration(), sim::seconds(5));
}

TEST(ReplayTrace, DurationWeightedMeans) {
  ReplayTrace trace({
      QualityTuple{sim::seconds(1), 0.001, 2e-6, 0, 0.0},
      QualityTuple{sim::seconds(3), 0.005, 6e-6, 0, 0.4},
  });
  EXPECT_NEAR(trace.mean_latency_s(), (0.001 + 3 * 0.005) / 4.0, 1e-12);
  EXPECT_NEAR(trace.mean_bottleneck_per_byte(), (2e-6 + 3 * 6e-6) / 4.0,
              1e-18);
  EXPECT_NEAR(trace.mean_loss(), 0.3, 1e-12);
}

TEST(ReplayTrace, TextRoundTrip) {
  ReplayTrace trace({
      QualityTuple{sim::seconds(1), 0.0031, 5.2e-6, 0.4e-6, 0.07},
      QualityTuple{sim::milliseconds(1500), 0.0005, 1.1e-6, 0.0, 0.0},
  });
  std::stringstream ss;
  trace.serialize(ss);
  const ReplayTrace loaded = ReplayTrace::parse(ss);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.tuples()[1].d, sim::milliseconds(1500));
  EXPECT_NEAR(loaded.tuples()[0].latency_s, 0.0031, 1e-12);
  EXPECT_NEAR(loaded.tuples()[0].per_byte_bottleneck, 5.2e-6, 1e-15);
  EXPECT_NEAR(loaded.tuples()[0].loss, 0.07, 1e-12);
}

TEST(ReplayTrace, ParseRejectsGarbage) {
  {
    std::stringstream ss("not a trace\n");
    EXPECT_THROW(ReplayTrace::parse(ss), std::runtime_error);
  }
  {
    std::stringstream ss("# tracemod replay v1\n1.0 0.003 banana 0 0\n");
    EXPECT_THROW(ReplayTrace::parse(ss), std::runtime_error);
  }
  {
    // Loss out of range.
    std::stringstream ss("# tracemod replay v1\n1.0 0.003 1e-6 0 1.5\n");
    EXPECT_THROW(ReplayTrace::parse(ss), std::runtime_error);
  }
  {
    // Negative duration.
    std::stringstream ss("# tracemod replay v1\n-1.0 0.003 1e-6 0 0\n");
    EXPECT_THROW(ReplayTrace::parse(ss), std::runtime_error);
  }
}

// One malformed value must fail loudly, with the line number, not load as a
// half-sane trace.  Each case is a variant of the checked-in
// porter_replay.trace tuple format with a single field poisoned.
TEST(ReplayTrace, ParseRejectsNonFiniteValues) {
  const char* bad[] = {
      "# tracemod replay v1\n1 nan 5.37e-06 1.01e-06 0\n",   // NaN latency
      "# tracemod replay v1\n1 0.0019 inf 1.01e-06 0\n",     // inf bandwidth
      "# tracemod replay v1\nnan 0.0019 5.37e-06 1e-06 0\n", // NaN duration
      "# tracemod replay v1\n1 0.0019 5.37e-06 -nan 0\n",    // NaN residual
      "# tracemod replay v1\n1 0.0019 5.37e-06 1e-06 inf\n", // inf loss
  };
  for (const char* text : bad) {
    std::stringstream ss(text);
    EXPECT_THROW(ReplayTrace::parse(ss), std::runtime_error) << text;
  }
}

TEST(ReplayTrace, ParseRejectsNegativeLatencyAndBandwidth) {
  const char* bad[] = {
      "# tracemod replay v1\n1 -0.001 5.37e-06 1.01e-06 0\n",  // latency
      "# tracemod replay v1\n1 0.0019 -5.37e-06 1.01e-06 0\n", // Vb
      "# tracemod replay v1\n1 0.0019 5.37e-06 -1.01e-06 0\n", // Vr
      "# tracemod replay v1\n1 0.0019 5.37e-06 1.01e-06 -0.1\n",  // loss
      "# tracemod replay v1\n0 0.0019 5.37e-06 1.01e-06 0\n",  // zero d
  };
  for (const char* text : bad) {
    std::stringstream ss(text);
    EXPECT_THROW(ReplayTrace::parse(ss), std::runtime_error) << text;
  }
}

TEST(ReplayTrace, ParseDiagnosticNamesLineNumber) {
  // A malformed variant of porter_replay.trace: good tuples, then a
  // non-monotone (negative-duration) tuple on line 5.
  std::stringstream ss(
      "# tracemod replay v1\n"
      "# d_seconds latency_s vb_s_per_byte vr_s_per_byte loss\n"
      "1 0.00196064168347 5.37785646388e-06 1.01599047833e-06 0\n"
      "1 0.00193349272278 5.27263474335e-06 1.12579696028e-06 0\n"
      "-1 0.00209237661815 5.44096730038e-06 1.9070073972e-06 0\n");
  try {
    ReplayTrace::parse(ss);
    FAIL() << "expected parse to throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 5"), std::string::npos) << what;
    EXPECT_NE(what.find("monotonically"), std::string::npos) << what;
  }
}

TEST(ReplayTrace, ParseRejectsTrailingGarbage) {
  std::stringstream ss(
      "# tracemod replay v1\n1 0.0019 5.37e-06 1.01e-06 0 surprise\n");
  EXPECT_THROW(ReplayTrace::parse(ss), std::runtime_error);
}

TEST(ReplayTrace, ParseSkipsCommentsAndBlankLines) {
  std::stringstream ss(
      "# tracemod replay v1\n# a comment\n\n1.0 0.003 1e-6 0 0\n");
  EXPECT_EQ(ReplayTrace::parse(ss).size(), 1u);
}

TEST(ReplayTrace, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "tracemod_model_test.rt";
  ReplayTrace::wavelan_like(sim::seconds(10)).save(path);
  EXPECT_EQ(ReplayTrace::load(path).size(), 10u);
  std::remove(path.c_str());
}

TEST(ReplayTrace, SyntheticConstant) {
  const auto trace =
      ReplayTrace::constant(sim::seconds(5), sim::seconds(1), 0.002, 2e6, 0.01);
  EXPECT_EQ(trace.size(), 5u);
  for (const auto& t : trace.tuples()) {
    EXPECT_DOUBLE_EQ(t.bottleneck_bandwidth_bps(), 2e6);
    EXPECT_DOUBLE_EQ(t.loss, 0.01);
  }
}

TEST(ReplayTrace, SyntheticStepAlternates) {
  const auto trace = ReplayTrace::bandwidth_step(
      sim::seconds(20), sim::seconds(1), 0.003, 200e3, 1.6e6, sim::seconds(10));
  ASSERT_EQ(trace.size(), 20u);
  EXPECT_DOUBLE_EQ(trace.tuples()[0].bottleneck_bandwidth_bps(), 1.6e6);
  EXPECT_DOUBLE_EQ(trace.tuples()[5].bottleneck_bandwidth_bps(), 200e3);
  EXPECT_DOUBLE_EQ(trace.tuples()[10].bottleneck_bandwidth_bps(), 1.6e6);
  EXPECT_DOUBLE_EQ(trace.tuples()[15].bottleneck_bandwidth_bps(), 200e3);
}

}  // namespace
}  // namespace tracemod::core
