// End-to-end tests for the modulated testbed facade: the paper's central
// claims as executable checks.
#include "core/emulator.hpp"

#include <gtest/gtest.h>

#include "apps/ftp.hpp"
#include "core/distiller.hpp"
#include "trace/ping.hpp"
#include "trace/trace_tap.hpp"

namespace tracemod::core {
namespace {

double ping_rtt_through(Emulator& emulator, std::uint32_t payload) {
  double rtt = -1;
  emulator.mobile().icmp().set_reply_callback([&](const net::Packet& pkt) {
    rtt = sim::to_seconds(emulator.loop().now() -
                          pkt.icmp().payload_timestamp);
  });
  emulator.mobile().icmp().send_echo(emulator.config().server_addr, 1, 1,
                                     payload, emulator.loop().now());
  emulator.run_for(sim::seconds(5));
  return rtt;
}

TEST(Emulator, EmptyTraceBehavesLikeBareEthernet) {
  Emulator emulator(ReplayTrace{});
  const double rtt = ping_rtt_through(emulator, 64);
  EXPECT_GT(rtt, 0);
  EXPECT_LT(rtt, 0.005);
  EXPECT_EQ(emulator.modulation().stats().modulated_out, 0u);
  EXPECT_GT(emulator.modulation().stats().passed_unmodulated, 0u);
}

TEST(Emulator, RttMatchesModelPrediction) {
  ModulationConfig mod;
  mod.tick = sim::Duration{0};
  EmulatorConfig cfg;
  cfg.modulation = mod;
  const double f = 0.020, vb = 5e-6, vr = 1e-6;
  Emulator emulator(
      ReplayTrace({QualityTuple{sim::seconds(60), f, vb, vr, 0.0}}), cfg);

  const std::uint32_t payload = 512;
  const double rtt = ping_rtt_through(emulator, payload);
  ASSERT_GT(rtt, 0);
  // Round trip: both directions pay F + s(Vb+Vr); the echo and reply have
  // the same size.  The physical Ethernet adds a little, the inbound
  // artifact a little more.
  const double s = payload + 28.0;
  const double model = 2 * (f + s * (vb + vr));
  EXPECT_NEAR(rtt, model, 0.004);
}

TEST(Emulator, LossRateIsExperiencedEndToEnd) {
  EmulatorConfig cfg;
  Emulator emulator(
      ReplayTrace({QualityTuple{sim::seconds(3600), 0.0, 0.0, 0.0, 0.2}}),
      cfg);
  int replies = 0;
  emulator.mobile().icmp().set_reply_callback(
      [&](const net::Packet&) { ++replies; });
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    emulator.mobile().icmp().send_echo(cfg.server_addr, 1,
                                       static_cast<std::uint16_t>(i), 64,
                                       emulator.loop().now());
    emulator.run_for(sim::milliseconds(5));
  }
  emulator.run_for(sim::seconds(2));
  // Each round trip crosses the layer twice: survival ~ (1-L)^2 = 0.64.
  EXPECT_NEAR(static_cast<double>(replies) / n, 0.64, 0.04);
}

TEST(Emulator, MeasurePhysicalVbIsNearEthernetCost) {
  const double vb = Emulator::measure_physical_vb();
  // 10 Mb/s Ethernet: 0.8 us/byte, plus bus-contention overhead.
  EXPECT_GT(vb, 0.6e-6);
  EXPECT_LT(vb, 1.2e-6);
}

TEST(Emulator, DistillOfModulatedNetworkRecoversTheTrace) {
  // The fixed point the methodology implies: collecting a trace *on the
  // emulated network* should distill back to (approximately) the original
  // replay parameters.
  const double f = 0.008, vb = 6e-6, vr = 0.5e-6;
  ModulationConfig mod;
  mod.tick = sim::Duration{0};  // granularity would bias short delays
  EmulatorConfig cfg;
  cfg.modulation = mod;
  cfg.modulation.inbound_vb_compensation = Emulator::measure_physical_vb();
  Emulator emulator(
      ReplayTrace({QualityTuple{sim::seconds(3600), f, vb, vr, 0.0}}), cfg);

  sim::ClockModel clock;
  trace::TraceTap* tap = nullptr;
  emulator.mobile().node().wrap_interface(
      0, [&](std::unique_ptr<net::NetDevice> inner) {
        auto t = std::make_unique<trace::TraceTap>(std::move(inner),
                                                   emulator.loop(), clock,
                                                   nullptr);
        tap = t.get();
        return t;
      });
  trace::CollectionDaemon daemon(emulator.loop(), *tap);
  trace::PingWorkload ping(emulator.mobile(), cfg.server_addr, clock);
  daemon.start();
  ping.start();
  emulator.run_for(sim::seconds(60));
  ping.stop();
  daemon.stop();

  Distiller distiller;
  const ReplayTrace recovered = distiller.distill(daemon.trace());
  ASSERT_FALSE(recovered.empty());
  EXPECT_NEAR(recovered.mean_latency_s(), f, f * 0.35);
  EXPECT_NEAR(recovered.mean_bottleneck_per_byte(), vb, vb * 0.25);
}

TEST(Emulator, UnmodifiedFtpRunsOverEmulatedNetwork) {
  // Transparency: the same FTP code from the live benchmarks, no changes.
  EmulatorConfig cfg;
  Emulator emulator(ReplayTrace::constant(sim::seconds(600), sim::seconds(1),
                                          0.003, 1.5e6, 0.0),
                    cfg);
  apps::FtpServer server(emulator.server());
  apps::FtpClient client(emulator.mobile(), {cfg.server_addr, 21});
  apps::FtpResult result;
  bool done = false;
  client.fetch(1 * 1000 * 1000, [&](apps::FtpResult r) {
    result = r;
    done = true;
  });
  while (!done && emulator.loop().step()) {
  }
  ASSERT_TRUE(result.ok);
  const double goodput = 8e6 / sim::to_seconds(result.elapsed) / 8.0 * 8.0;
  // Goodput bounded by the emulated bottleneck, not the 10 Mb/s wire.
  EXPECT_LT(goodput, 1.6e6);
  EXPECT_GT(goodput, 0.9e6);
}

TEST(Emulator, SameSeedIsBitIdentical) {
  auto run = [] {
    EmulatorConfig cfg;
    cfg.seed = 77;
    Emulator emulator(ReplayTrace::wavelan_like(sim::seconds(120)), cfg);
    apps::FtpServer server(emulator.server());
    apps::FtpClient client(emulator.mobile(), {cfg.server_addr, 21});
    double elapsed = 0;
    bool done = false;
    client.fetch(500 * 1000, [&](apps::FtpResult r) {
      elapsed = sim::to_seconds(r.elapsed);
      done = true;
    });
    while (!done && emulator.loop().step()) {
    }
    return elapsed;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(Emulator, DifferentSeedsDiverge) {
  auto run = [](std::uint64_t seed) {
    EmulatorConfig cfg;
    cfg.seed = seed;
    Emulator emulator(ReplayTrace::wavelan_like(sim::seconds(300)), cfg);
    apps::FtpServer server(emulator.server());
    apps::FtpClient client(emulator.mobile(), {cfg.server_addr, 21});
    double elapsed = 0;
    bool done = false;
    client.fetch(1000 * 1000, [&](apps::FtpResult r) {
      elapsed = sim::to_seconds(r.elapsed);
      done = true;
    });
    while (!done && emulator.loop().step()) {
    }
    return elapsed;
  };
  EXPECT_NE(run(1), run(2));  // loss draws differ
}

}  // namespace
}  // namespace tracemod::core
