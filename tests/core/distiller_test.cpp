#include "core/distiller.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/random.hpp"

namespace tracemod::core {
namespace {

constexpr double kS1 = 60.0;    // small echo, IP bytes
constexpr double kS2 = 1052.0;  // large echo, IP bytes

/// Builds a ping-workload trace whose round-trips follow the paper's model
/// exactly for the given ground-truth parameters.
struct TraceBuilder {
  trace::CollectedTrace trace;
  std::uint16_t seq = 0;

  void add_group(double at_s, double f, double vb, double vr,
                 bool drop_reply1 = false, bool drop_reply2 = false,
                 bool drop_reply3 = false) {
    const double v = vb + vr;
    const double t1 = 2 * (f + kS1 * v);
    const double t2 = 2 * (f + kS2 * v);
    const double t3 = t2 + kS2 * vb;
    add_packet(at_s, kS1, t1, drop_reply1);
    add_packet(at_s + 0.001, kS2, t2, drop_reply2);
    add_packet(at_s + 0.002, kS2, t3, drop_reply3);
  }

  void add_packet(double at_s, double bytes, double rtt_s, bool drop_reply) {
    trace::PacketRecord echo;
    echo.at = sim::kEpoch + sim::from_seconds(at_s);
    echo.dir = trace::PacketDirection::kOutgoing;
    echo.protocol = net::Protocol::kIcmp;
    echo.icmp_kind = trace::IcmpKind::kEcho;
    echo.icmp_seq = seq;
    echo.ip_bytes = static_cast<std::uint32_t>(bytes);
    trace.records.emplace_back(echo);
    if (!drop_reply) {
      trace::PacketRecord reply = echo;
      reply.dir = trace::PacketDirection::kIncoming;
      reply.icmp_kind = trace::IcmpKind::kEchoReply;
      reply.echo_origin = echo.at;
      reply.at = echo.at + sim::from_seconds(rtt_s);
      trace.records.emplace_back(reply);
    }
    ++seq;
  }
};

TEST(Distiller, RecoversExactParametersFromCleanTrace) {
  TraceBuilder b;
  const double f = 0.0025, vb = 5e-6, vr = 1e-6;
  for (int s = 0; s < 30; ++s) b.add_group(s, f, vb, vr);

  Distiller d;
  const ReplayTrace out = d.distill(b.trace);
  ASSERT_GT(out.size(), 20u);
  EXPECT_EQ(d.stats().groups_total, 30u);
  EXPECT_EQ(d.stats().groups_corrected, 0u);
  for (const auto& t : out.tuples()) {
    EXPECT_NEAR(t.latency_s, f, 1e-9);
    EXPECT_NEAR(t.per_byte_bottleneck, vb, 1e-12);
    EXPECT_NEAR(t.per_byte_residual, vr, 1e-12);
    EXPECT_DOUBLE_EQ(t.loss, 0.0);
  }
}

TEST(Distiller, TracksAStepChangeWithinTheWindow) {
  TraceBuilder b;
  for (int s = 0; s < 20; ++s) b.add_group(s, 0.002, 4e-6, 1e-6);
  for (int s = 20; s < 40; ++s) b.add_group(s, 0.010, 10e-6, 2e-6);

  Distiller d;
  const ReplayTrace out = d.distill(b.trace);
  ASSERT_GT(out.size(), 30u);
  // Early tuples at the old value, late tuples at the new one; the 5 s
  // window smears only the transition region.
  EXPECT_NEAR(out.tuples()[5].latency_s, 0.002, 1e-6);
  EXPECT_NEAR(out.tuples()[32].latency_s, 0.010, 1e-6);
  EXPECT_NEAR(out.tuples()[5].per_byte_bottleneck, 4e-6, 1e-9);
  EXPECT_NEAR(out.tuples()[32].per_byte_bottleneck, 10e-6, 1e-9);
}

TEST(Distiller, NegativeParameterTakesCorrectionPath) {
  TraceBuilder b;
  for (int s = 0; s < 10; ++s) b.add_group(s, 0.002, 4e-6, 1e-6);
  // A group whose small echo got stuck behind a media-access delay: its
  // raw solution has negative V (t1 > t2's implied line).
  {
    const double v = 5e-6;
    const double t1 = 2 * (0.002 + kS1 * v) + 0.080;  // +80 ms spike
    const double t2 = 2 * (0.002 + kS2 * v);
    const double t3 = t2 + kS2 * 4e-6;
    b.add_packet(10.0, kS1, t1, false);
    b.add_packet(10.001, kS2, t2, false);
    b.add_packet(10.002, kS2, t3, false);
  }
  for (int s = 11; s < 20; ++s) b.add_group(s, 0.002, 4e-6, 1e-6);

  Distiller d;
  const ReplayTrace out = d.distill(b.trace);
  EXPECT_EQ(d.stats().groups_corrected, 1u);
  // The spike lands in F (divided by the window average), Vb/Vr stay.
  double max_latency = 0;
  for (const auto& t : out.tuples()) {
    max_latency = std::max(max_latency, t.latency_s);
    EXPECT_NEAR(t.per_byte_bottleneck, 4e-6, 1e-9);
  }
  EXPECT_GT(max_latency, 0.005);
}

TEST(Distiller, CorrectionDoesNotCascade) {
  // After a corrected group, the baseline must still be the last *good*
  // estimate: a second spike is corrected relative to 2 ms, not to the
  // previous corrected value.
  TraceBuilder b;
  for (int s = 0; s < 6; ++s) b.add_group(s, 0.002, 4e-6, 1e-6);
  for (int s = 6; s < 8; ++s) {
    const double v = 5e-6;
    b.add_packet(s, kS1, 2 * (0.002 + kS1 * v) + 0.050, false);
    b.add_packet(s + 0.001, kS2, 2 * (0.002 + kS2 * v), false);
    b.add_packet(s + 0.002, kS2, 2 * (0.002 + kS2 * v) + kS2 * 4e-6, false);
  }
  Distiller d;
  d.distill(b.trace);
  ASSERT_EQ(d.stats().groups_corrected, 2u);
  const auto& estimates = d.estimates();
  // Both corrected estimates sit near baseline + spike/2 (~27 ms), not
  // baseline + spike (~52 ms) as cascading would produce.
  const auto& e6 = estimates[6];
  const auto& e7 = estimates[7];
  ASSERT_TRUE(e6.corrected);
  ASSERT_TRUE(e7.corrected);
  EXPECT_NEAR(e6.latency_s, e7.latency_s, 1e-6);
  EXPECT_LT(e7.latency_s, 0.040);
}

TEST(Distiller, SkipsGroupsBeforeFirstGoodEstimate) {
  TraceBuilder b;
  // Only pathological groups: t3 < t2 (negative Vb) with no prior good.
  for (int s = 0; s < 5; ++s) {
    b.add_packet(s, kS1, 0.004, false);
    b.add_packet(s + 0.001, kS2, 0.014, false);
    b.add_packet(s + 0.002, kS2, 0.013, false);  // t3 < t2
  }
  Distiller d;
  const ReplayTrace out = d.distill(b.trace);
  EXPECT_EQ(d.stats().groups_skipped, 5u);
  EXPECT_TRUE(out.empty());
}

TEST(Distiller, IncompleteGroupsAreIgnoredForDelay) {
  TraceBuilder b;
  for (int s = 0; s < 10; ++s) {
    b.add_group(s, 0.002, 4e-6, 1e-6, /*drop1=*/false, /*drop2=*/s % 3 == 0);
  }
  Distiller d;
  const ReplayTrace out = d.distill(b.trace);
  EXPECT_EQ(d.stats().groups_total, 6u);  // 4 of 10 lost a reply
  EXPECT_FALSE(out.empty());
}

TEST(Distiller, LossFromSequenceGaps) {
  TraceBuilder b;
  // Drop the third reply of every other group: 1 of every 6 replies
  // missing, while half the groups stay complete for delay estimation.
  for (int s = 0; s < 40; ++s) {
    b.add_group(s, 0.002, 4e-6, 1e-6, false, false, s % 2 == 0);
  }
  Distiller d;
  const ReplayTrace out = d.distill(b.trace);
  ASSERT_FALSE(out.empty());
  // b/a = 5/6 => L = 1 - sqrt(5/6) ~ 0.0871.
  const double expected = 1.0 - std::sqrt(5.0 / 6.0);
  // Interior tuples (edge windows see partial data).
  for (std::size_t i = 5; i + 5 < out.size(); ++i) {
    EXPECT_NEAR(out.tuples()[i].loss, expected, 0.03);
  }
}

TEST(Distiller, TotalOutageFillsForwardAndCapsLoss) {
  TraceBuilder b;
  for (int s = 0; s < 10; ++s) b.add_group(s, 0.002, 4e-6, 1e-6);
  for (int s = 10; s < 20; ++s) {
    b.add_group(s, 0.002, 4e-6, 1e-6, true, true, true);  // blackout
  }
  for (int s = 20; s < 30; ++s) b.add_group(s, 0.002, 4e-6, 1e-6);
  Distiller d(DistillConfig{});
  const ReplayTrace out = d.distill(b.trace);
  ASSERT_GT(out.size(), 25u);
  double worst = 0;
  for (const auto& t : out.tuples()) {
    worst = std::max(worst, t.loss);
    // Delay parameters exist everywhere (forward fill).
    EXPECT_GT(t.per_byte_bottleneck, 0.0);
    EXPECT_LE(t.loss, d.config().max_loss);
  }
  EXPECT_GT(worst, 0.8);
  EXPECT_GT(d.stats().windows_empty, 0u);
}

TEST(Distiller, EmptyTraceYieldsEmptyReplay) {
  Distiller d;
  EXPECT_TRUE(d.distill(trace::CollectedTrace{}).empty());
}

TEST(Distiller, TupleDurationsEqualStep) {
  TraceBuilder b;
  for (int s = 0; s < 10; ++s) b.add_group(s, 0.002, 4e-6, 1e-6);
  DistillConfig cfg;
  cfg.step = sim::milliseconds(500);
  Distiller d(cfg);
  const ReplayTrace out = d.distill(b.trace);
  for (const auto& t : out.tuples()) EXPECT_EQ(t.d, sim::milliseconds(500));
}

// ---- property sweep: exact recovery over a parameter grid -----------------

struct DistillParams {
  double f, vb, vr;
};

class DistillerRecovery : public ::testing::TestWithParam<DistillParams> {};

TEST_P(DistillerRecovery, RoundTripsGroundTruth) {
  const auto [f, vb, vr] = GetParam();
  TraceBuilder b;
  for (int s = 0; s < 20; ++s) b.add_group(s, f, vb, vr);
  Distiller d;
  const ReplayTrace out = d.distill(b.trace);
  ASSERT_FALSE(out.empty());
  EXPECT_NEAR(out.mean_latency_s(), f, 1e-9 + f * 1e-6);
  EXPECT_NEAR(out.mean_bottleneck_per_byte(), vb, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, DistillerRecovery,
    ::testing::Values(
        DistillParams{0.0005, 1e-6, 0.0},     // fast LAN
        DistillParams{0.0030, 5e-6, 0.5e-6},  // WaveLAN-ish
        DistillParams{0.0100, 40e-6, 4e-6},   // slow modem-ish
        DistillParams{0.0800, 5e-6, 1e-6},    // satellite-ish latency
        DistillParams{0.0000, 8e-6, 0.0},     // zero latency edge
        DistillParams{0.0030, 5e-6, 20e-6})); // residual dominates

}  // namespace
}  // namespace tracemod::core
