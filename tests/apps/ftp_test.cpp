#include "apps/ftp.hpp"

#include <gtest/gtest.h>

#include "../transport/testbed.hpp"

namespace tracemod::apps {
namespace {

using tracemod::testing::EthernetPair;

struct FtpRig : EthernetPair {
  FtpServer server_app{server};
  FtpClient client_app{client, {server_addr, 21}};
};

TEST(Ftp, FetchDeliversExactByteCount) {
  FtpRig rig;
  FtpResult result;
  rig.client_app.fetch(500'000, [&](FtpResult r) { result = r; });
  rig.loop.run_for(sim::seconds(60));
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.bytes, 500'000u);
  EXPECT_GT(result.elapsed.count(), 0);
}

TEST(Ftp, StoreCompletesWithConfirmation) {
  FtpRig rig;
  FtpResult result;
  rig.client_app.store(500'000, [&](FtpResult r) { result = r; });
  rig.loop.run_for(sim::seconds(60));
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.bytes, 500'000u);
}

TEST(Ftp, DiskRatePacesTheFastEthernet) {
  // On a 10 Mb/s wire the 4.1 Mb/s disk is the bottleneck (the paper's
  // Ethernet FTP row: ~20 s for 10 MB).
  FtpRig rig;
  FtpResult result;
  rig.client_app.fetch(10'000'000, [&](FtpResult r) { result = r; });
  rig.loop.run_for(sim::seconds(120));
  ASSERT_TRUE(result.ok);
  const double elapsed = sim::to_seconds(result.elapsed);
  EXPECT_NEAR(elapsed, 10e6 * 8 / 4.1e6, 2.0);
}

TEST(Ftp, SlowerDiskSlowsTransfer) {
  FtpRig rig;
  FtpConfig slow;
  slow.disk_rate_bps = 1e6;
  FtpClient slow_client(rig.client, {rig.server_addr, 21}, slow);
  // Note: RETR is paced by the *server's* disk; STOR by the client's.
  FtpResult result;
  slow_client.store(1'000'000, [&](FtpResult r) { result = r; });
  rig.loop.run_for(sim::seconds(60));
  ASSERT_TRUE(result.ok);
  EXPECT_GT(sim::to_seconds(result.elapsed), 7.5);
}

TEST(Ftp, ConcurrentTransfersBothComplete) {
  FtpRig rig;
  FtpResult a, b;
  rig.client_app.fetch(200'000, [&](FtpResult r) { a = r; });
  rig.client_app.store(200'000, [&](FtpResult r) { b = r; });
  rig.loop.run_for(sim::seconds(60));
  EXPECT_TRUE(a.ok);
  EXPECT_TRUE(b.ok);
}

TEST(Ftp, SequentialTransfersOnFreshConnections) {
  FtpRig rig;
  int completed = 0;
  std::function<void()> next = [&] {
    rig.client_app.fetch(50'000, [&](FtpResult r) {
      ASSERT_TRUE(r.ok);
      if (++completed < 5) next();
    });
  };
  next();
  rig.loop.run_for(sim::seconds(120));
  EXPECT_EQ(completed, 5);
}

}  // namespace
}  // namespace tracemod::apps
