#include "apps/andrew.hpp"

#include <gtest/gtest.h>

#include "../transport/testbed.hpp"

namespace tracemod::apps {
namespace {

using tracemod::testing::EthernetPair;

TEST(Andrew, PopulatesDeterministicTree) {
  EthernetPair net;
  NfsServer a(net.server, 2049);
  NfsServer b(net.client, 2049);
  AndrewConfig cfg;
  populate_andrew_tree(a, cfg, 7);
  populate_andrew_tree(b, cfg, 7);
  for (std::size_t i = 0; i < cfg.files; ++i) {
    const std::string f = "master/file" + std::to_string(i) + ".c";
    ASSERT_TRUE(a.exists(f));
    EXPECT_EQ(a.getattr(f).size, b.getattr(f).size);
  }
  EXPECT_TRUE(a.exists("obj"));
}

TEST(Andrew, TreeSizeNearTwoHundredKb) {
  EthernetPair net;
  NfsServer server(net.server, 2049);
  AndrewConfig cfg;
  populate_andrew_tree(server, cfg, 7);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < cfg.files; ++i) {
    total += server.getattr("master/file" + std::to_string(i) + ".c").size;
  }
  EXPECT_NEAR(static_cast<double>(total), 200.0 * 1024, 10'000);
}

TEST(Andrew, RunsAllPhasesOnCleanNetwork) {
  EthernetPair net;
  NfsServer server(net.server, 2049);
  AndrewConfig cfg;
  populate_andrew_tree(server, cfg, 7);
  AndrewBenchmark bench(net.client, {net.server_addr, 2049}, cfg, 7);

  AndrewResult result;
  bool done = false;
  bench.start([&](AndrewResult r) {
    result = r;
    done = true;
  });
  while (!done && net.loop.step()) {
  }
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.ok);
  // Every phase ran and took positive time; totals are consistent.
  EXPECT_GT(result.makedir_s, 0);
  EXPECT_GT(result.copy_s, 0);
  EXPECT_GT(result.scandir_s, 0);
  EXPECT_GT(result.readall_s, 0);
  EXPECT_GT(result.make_s, 0);
  const double phase_sum = result.makedir_s + result.copy_s +
                           result.scandir_s + result.readall_s +
                           result.make_s;
  EXPECT_NEAR(result.total_s, phase_sum, 0.1);
  // The Make phase dominates, as in every published Andrew run.
  EXPECT_GT(result.make_s, result.total_s / 2);
  // The benchmark created the tree on the server.
  EXPECT_TRUE(server.exists("src/dir0/file0.c"));
  EXPECT_TRUE(server.exists("obj/file0.o"));
  EXPECT_GT(result.rpc_calls, 1000u);
}

TEST(Andrew, StatusCheckPhasesAreRpcDominated) {
  // ScanDir minus its CPU budget should be almost entirely small-RPC time:
  // on the LAN that's well under a second per 1000 ops.
  EthernetPair net;
  NfsServer server(net.server, 2049);
  AndrewConfig cfg;
  populate_andrew_tree(server, cfg, 7);
  AndrewBenchmark bench(net.client, {net.server_addr, 2049}, cfg, 7);
  AndrewResult result;
  bool done = false;
  bench.start([&](AndrewResult r) {
    result = r;
    done = true;
  });
  while (!done && net.loop.step()) {
  }
  const double network_s =
      result.scandir_s - cfg.cpu_scandir_s -
      cfg.cpu_per_op_s * static_cast<double>(cfg.scandir_status_ops + cfg.dirs);
  EXPECT_GT(network_s, 0.0);
  EXPECT_LT(network_s, 2.0);
}

}  // namespace
}  // namespace tracemod::apps
