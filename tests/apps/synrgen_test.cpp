#include "apps/synrgen.hpp"

#include <gtest/gtest.h>

#include "../transport/testbed.hpp"

namespace tracemod::apps {
namespace {

using tracemod::testing::EthernetPair;

TEST(SynRGen, CreatesWorkingFilesAndCycles) {
  EthernetPair net;
  NfsServer server(net.server, 2049);
  SynRGenUser user(net.client, {net.server_addr, 2049}, "u0", 11);
  user.start();
  net.loop.run_for(sim::seconds(60));
  user.stop();

  EXPECT_TRUE(server.exists("home/u0/f0"));
  EXPECT_TRUE(server.exists("home/u0/f9"));
  EXPECT_GT(user.stats().cycles, 10u);
  EXPECT_GT(user.stats().edits + user.stats().compiles, 10u);
  EXPECT_GT(user.nfs().stats().calls, 100u);
}

TEST(SynRGen, StopHaltsTraffic) {
  EthernetPair net;
  NfsServer server(net.server, 2049);
  SynRGenUser user(net.client, {net.server_addr, 2049}, "u0", 11);
  user.start();
  net.loop.run_for(sim::seconds(20));
  user.stop();
  const auto calls = user.nfs().stats().calls;
  net.loop.run_for(sim::seconds(20));
  EXPECT_EQ(user.nfs().stats().calls, calls);
}

TEST(SynRGen, MultipleUsersShareOneServer) {
  EthernetPair net;
  NfsServer server(net.server, 2049);
  std::vector<std::unique_ptr<SynRGenUser>> users;
  for (int i = 0; i < 5; ++i) {
    users.push_back(std::make_unique<SynRGenUser>(
        net.client, net::Endpoint{net.server_addr, 2049},
        "u" + std::to_string(i), 100 + i));
    users.back()->start();
  }
  net.loop.run_for(sim::seconds(30));
  for (auto& u : users) {
    u->stop();
    EXPECT_GT(u->stats().cycles, 3u);
  }
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(server.exists("home/u" + std::to_string(i) + "/f0"));
  }
}

TEST(SynRGen, SeedsDiversifyBehaviour) {
  EthernetPair net;
  NfsServer server(net.server, 2049);
  SynRGenUser a(net.client, {net.server_addr, 2049}, "a", 1);
  SynRGenUser b(net.client, {net.server_addr, 2049}, "b", 2);
  a.start();
  b.start();
  net.loop.run_for(sim::seconds(120));
  a.stop();
  b.stop();
  EXPECT_NE(a.nfs().stats().calls, b.nfs().stats().calls);
}

}  // namespace
}  // namespace tracemod::apps
