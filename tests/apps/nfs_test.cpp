#include "apps/nfs.hpp"

#include <gtest/gtest.h>

#include "../transport/testbed.hpp"

namespace tracemod::apps {
namespace {

using tracemod::testing::EthernetPair;
using tracemod::testing::LossyShim;

struct NfsRig : EthernetPair {
  NfsServer server_app{server, 2049};
  NfsClient client_app{client, {server_addr, 2049}};
};

TEST(Nfs, MkdirCreateGetattrRoundTrip) {
  NfsRig rig;
  bool done = false;
  rig.client_app.mkdir("dir", [&](const NfsReply& r, bool ok) {
    ASSERT_TRUE(ok);
    EXPECT_EQ(r.status, NfsStatus::kOk);
    rig.client_app.create("dir/file", [&](const NfsReply& r2, bool ok2) {
      ASSERT_TRUE(ok2);
      EXPECT_EQ(r2.status, NfsStatus::kOk);
      rig.client_app.getattr("dir/file", [&](const NfsReply& r3, bool ok3) {
        ASSERT_TRUE(ok3);
        EXPECT_EQ(r3.status, NfsStatus::kOk);
        EXPECT_FALSE(r3.attr.is_dir);
        done = true;
      });
    });
  });
  rig.loop.run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(rig.server_app.exists("dir/file"));
}

TEST(Nfs, WriteExtendsAndReadReturnsData) {
  NfsRig rig;
  rig.server_app.add_file("f", 10000);
  bool done = false;
  rig.client_app.write("f", 8000, 4000, [&](const NfsReply& r, bool ok) {
    ASSERT_TRUE(ok);
    EXPECT_EQ(r.attr.size, 12000u);
    rig.client_app.read("f", 0, 8192, [&](const NfsReply& r2, bool ok2) {
      ASSERT_TRUE(ok2);
      EXPECT_EQ(r2.data_bytes, 8192u);
      done = true;
    });
  });
  rig.loop.run();
  EXPECT_TRUE(done);
}

TEST(Nfs, ReadPastEofReturnsShort) {
  NfsRig rig;
  rig.server_app.add_file("f", 1000);
  std::uint32_t got = 12345;
  rig.client_app.read("f", 900, 500,
                      [&](const NfsReply& r, bool) { got = r.data_bytes; });
  rig.loop.run();
  EXPECT_EQ(got, 100u);
}

TEST(Nfs, ErrorsHaveStatusCodes) {
  NfsRig rig;
  rig.server_app.add_file("f", 10);
  rig.server_app.add_dir("d");
  NfsStatus noent{}, isdir{}, notdir{}, exists{};
  rig.client_app.getattr("missing",
                         [&](const NfsReply& r, bool) { noent = r.status; });
  rig.client_app.read("d", 0, 10,
                      [&](const NfsReply& r, bool) { isdir = r.status; });
  rig.client_app.readdir("f",
                         [&](const NfsReply& r, bool) { notdir = r.status; });
  rig.client_app.create("f",
                        [&](const NfsReply& r, bool) { exists = r.status; });
  rig.loop.run();
  EXPECT_EQ(noent, NfsStatus::kNoEntry);
  EXPECT_EQ(isdir, NfsStatus::kIsDir);
  EXPECT_EQ(notdir, NfsStatus::kNotDir);
  EXPECT_EQ(exists, NfsStatus::kExists);
}

TEST(Nfs, ReaddirListsChildren) {
  NfsRig rig;
  rig.server_app.add_file("d/a", 1);
  rig.server_app.add_file("d/b", 1);
  rig.server_app.add_dir("d/sub");
  std::vector<std::string> names;
  rig.client_app.readdir("d",
                         [&](const NfsReply& r, bool) { names = r.entries; });
  rig.loop.run();
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b", "sub"}));
}

TEST(Nfs, RemoveDeletes) {
  NfsRig rig;
  rig.server_app.add_file("f", 10);
  bool done = false;
  rig.client_app.call(NfsOp::kRemove, "f", 0, 0,
                      [&](const NfsReply& r, bool ok) {
                        EXPECT_TRUE(ok);
                        EXPECT_EQ(r.status, NfsStatus::kOk);
                        done = true;
                      });
  rig.loop.run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(rig.server_app.exists("f"));
}

TEST(Nfs, WireSizesStatusVsData) {
  // The paper's distinction: status checks are small, data exchanges big.
  NfsRequest getattr{1, NfsOp::kGetAttr, "some/path", 0, 0};
  NfsRequest write{2, NfsOp::kWrite, "some/path", 0, 8192};
  EXPECT_LT(request_wire_bytes(getattr), 200u);
  EXPECT_GT(request_wire_bytes(write), 8192u);

  NfsReply small;
  NfsReply data;
  data.data_bytes = 8192;
  EXPECT_LT(reply_wire_bytes(small), 200u);
  EXPECT_GT(reply_wire_bytes(data), 8192u);
}

TEST(Nfs, RetransmissionRecoversLostRequest) {
  NfsRig rig;
  rig.server_app.add_file("f", 10);
  rig.client.node().wrap_interface(0, [](std::unique_ptr<net::NetDevice> d) {
    return std::make_unique<LossyShim>(std::move(d));
  });
  auto& shim = static_cast<LossyShim&>(rig.client.node().device(0));
  shim.drop_outbound_at(0);  // the first request

  bool ok_seen = false;
  rig.client_app.getattr("f", [&](const NfsReply&, bool ok) { ok_seen = ok; });
  rig.loop.run_for(sim::seconds(5));
  EXPECT_TRUE(ok_seen);
  EXPECT_EQ(rig.client_app.stats().retransmissions, 1u);
}

TEST(Nfs, DuplicateRequestAnsweredFromCacheWithoutReexecution) {
  NfsRig rig;
  rig.client.node().wrap_interface(0, [](std::unique_ptr<net::NetDevice> d) {
    return std::make_unique<LossyShim>(std::move(d));
  });
  auto& shim = static_cast<LossyShim&>(rig.client.node().device(0));
  // The *reply* to the first transmission is lost; the retransmission must
  // not re-create the file (non-idempotent op) -- the duplicate cache
  // answers it.
  shim.drop_inbound_at(0);
  NfsStatus status{};
  rig.client_app.create("f", [&](const NfsReply& r, bool) { status = r.status; });
  rig.loop.run_for(sim::seconds(5));
  EXPECT_EQ(status, NfsStatus::kOk);  // not kExists
  EXPECT_EQ(rig.server_app.stats().duplicate_xids, 1u);
}

TEST(Nfs, GivesUpAfterMaxRetries) {
  sim::SimContext ctx;
  sim::EventLoop& loop = ctx.loop();
  net::EthernetSegment segment(loop);
  transport::Host client(ctx, "c", 1);
  auto dev = std::make_unique<net::EthernetDevice>(segment, "c0");
  dev->claim_address(net::IpAddress(10, 0, 0, 1));
  client.node().add_interface(std::move(dev), net::IpAddress(10, 0, 0, 1));
  client.node().set_default_route(0);

  NfsClientConfig cfg;
  cfg.max_retries = 3;
  // No server at all.
  NfsClient nfs(client, {net::IpAddress(10, 0, 0, 2), 2049}, cfg);
  bool failed = false;
  nfs.getattr("x", [&](const NfsReply&, bool ok) { failed = !ok; });
  loop.run();
  EXPECT_TRUE(failed);
  EXPECT_EQ(nfs.stats().failures, 1u);
  EXPECT_EQ(nfs.stats().retransmissions, 3u);
}

TEST(Nfs, TimeoutsBackOffExponentially) {
  sim::SimContext ctx;
  sim::EventLoop& loop = ctx.loop();
  net::EthernetSegment segment(loop);
  transport::Host client(ctx, "c", 1);
  auto dev = std::make_unique<net::EthernetDevice>(segment, "c0");
  dev->claim_address(net::IpAddress(10, 0, 0, 1));
  client.node().add_interface(std::move(dev), net::IpAddress(10, 0, 0, 1));
  client.node().set_default_route(0);

  NfsClientConfig cfg;
  cfg.initial_timeout = sim::milliseconds(700);
  cfg.max_retries = 3;
  NfsClient nfs(client, {net::IpAddress(10, 0, 0, 2), 2049}, cfg);
  sim::TimePoint failed_at{};
  nfs.getattr("x", [&](const NfsReply&, bool) { failed_at = loop.now(); });
  loop.run();
  // 0.7 + 1.4 + 2.8 + 5.6 = 10.5 s.
  EXPECT_NEAR(sim::to_seconds(failed_at), 10.5, 0.01);
}

TEST(Nfs, LargeTransfersFragmentOnTheWire) {
  NfsRig rig;
  rig.server_app.add_file("big", 64 * 1024);
  bool done = false;
  rig.client_app.read("big", 0, 8192,
                      [&](const NfsReply&, bool ok) { done = ok; });
  rig.loop.run();
  EXPECT_TRUE(done);
  // The 8 KB reply crossed as IP fragments and was reassembled.
  EXPECT_GE(rig.server.node().stats().datagrams_fragmented, 1u);
  EXPECT_GE(rig.client.node().stats().datagrams_reassembled, 1u);
}

}  // namespace
}  // namespace tracemod::apps
