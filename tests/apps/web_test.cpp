#include "apps/web.hpp"

#include <gtest/gtest.h>

#include "../transport/testbed.hpp"

namespace tracemod::apps {
namespace {

using tracemod::testing::EthernetPair;

TEST(Web, ReferenceTraceIsSeededAndPlausible) {
  sim::Rng a(5), b(5), c(6);
  const auto r1 = make_search_task_trace(a, 100);
  const auto r2 = make_search_task_trace(b, 100);
  const auto r3 = make_search_task_trace(c, 100);
  ASSERT_EQ(r1.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(r1[i].object_bytes, r2[i].object_bytes);  // same seed
    EXPECT_GE(r1[i].object_bytes, 1500u);
    EXPECT_LE(r1[i].object_bytes, 200'000u);
    EXPECT_GT(r1[i].processing.count(), 0);
  }
  bool differs = false;
  for (std::size_t i = 0; i < 100; ++i) {
    differs |= (r1[i].object_bytes != r3[i].object_bytes);
  }
  EXPECT_TRUE(differs);
}

TEST(Web, BenchmarkFetchesEveryObject) {
  EthernetPair net;
  WebServer server(net.server, 80);
  std::vector<WebReference> refs;
  for (std::uint32_t i = 1; i <= 10; ++i) {
    refs.push_back(WebReference{i * 1000, sim::milliseconds(10)});
  }
  WebBenchmark bench(net.client, {net.server_addr, 80}, refs);
  WebBenchmark::Result result;
  bool done = false;
  bench.start([&](WebBenchmark::Result r) {
    result = r;
    done = true;
  });
  net.loop.run_for(sim::seconds(60));
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.objects_fetched, 10u);
  EXPECT_EQ(result.objects_failed, 0u);
  EXPECT_EQ(result.bytes_fetched, 55'000u);
  EXPECT_EQ(server.stats().requests, 10u);
}

TEST(Web, ProcessingTimeDominatesOnFastNetwork) {
  EthernetPair net;
  WebServer server(net.server, 80);
  std::vector<WebReference> refs(20, WebReference{2000, sim::milliseconds(100)});
  WebBenchmark bench(net.client, {net.server_addr, 80}, refs);
  double elapsed = 0;
  bench.start([&](WebBenchmark::Result r) { elapsed = sim::to_seconds(r.elapsed); });
  net.loop.run_for(sim::seconds(60));
  EXPECT_GT(elapsed, 2.0);   // 20 x 100 ms
  EXPECT_LT(elapsed, 2.6);   // fetches are cheap on the LAN
}

TEST(Web, DeadServerTimesOutAndCountsFailures) {
  EthernetPair net;  // no WebServer at all
  std::vector<WebReference> refs(3, WebReference{2000, sim::milliseconds(1)});
  WebBenchmark bench(net.client, {net.server_addr, 80}, refs,
                     /*object_timeout=*/sim::seconds(5));
  WebBenchmark::Result result;
  bool done = false;
  bench.start([&](WebBenchmark::Result r) {
    result = r;
    done = true;
  });
  net.loop.run_for(sim::seconds(60));
  ASSERT_TRUE(done);
  EXPECT_EQ(result.objects_failed, 3u);
  EXPECT_EQ(result.objects_fetched, 0u);
  // Each object cost about the 5 s timeout.
  EXPECT_NEAR(sim::to_seconds(result.elapsed), 15.0, 1.5);
}

TEST(Web, LargeObjectSpansManySegments) {
  EthernetPair net;
  WebServer server(net.server, 80);
  std::vector<WebReference> refs{WebReference{150'000, sim::milliseconds(1)}};
  WebBenchmark bench(net.client, {net.server_addr, 80}, refs);
  WebBenchmark::Result result;
  bench.start([&](WebBenchmark::Result r) { result = r; });
  net.loop.run_for(sim::seconds(60));
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.bytes_fetched, 150'000u);
}

}  // namespace
}  // namespace tracemod::apps
