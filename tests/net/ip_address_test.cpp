#include "net/ip_address.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace tracemod::net {
namespace {

TEST(IpAddress, ParseRoundTrip) {
  const IpAddress a = IpAddress::parse("10.1.2.3");
  EXPECT_EQ(a.str(), "10.1.2.3");
  EXPECT_EQ(a, IpAddress(10, 1, 2, 3));
}

TEST(IpAddress, ParseBoundaryValues) {
  EXPECT_EQ(IpAddress::parse("0.0.0.0").value, 0u);
  EXPECT_EQ(IpAddress::parse("255.255.255.255").value, 0xffffffffu);
}

TEST(IpAddress, ParseRejectsMalformed) {
  EXPECT_THROW(IpAddress::parse(""), std::invalid_argument);
  EXPECT_THROW(IpAddress::parse("1.2.3"), std::invalid_argument);
  EXPECT_THROW(IpAddress::parse("1.2.3.4.5"), std::invalid_argument);
  EXPECT_THROW(IpAddress::parse("256.0.0.1"), std::invalid_argument);
  EXPECT_THROW(IpAddress::parse("a.b.c.d"), std::invalid_argument);
  EXPECT_THROW(IpAddress::parse("1.2.3.4x"), std::invalid_argument);
}

TEST(IpAddress, OrderingAndEquality) {
  const IpAddress a(10, 0, 0, 1), b(10, 0, 0, 2);
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, IpAddress(10, 0, 0, 1));
  EXPECT_TRUE(IpAddress{}.is_unspecified());
  EXPECT_FALSE(a.is_unspecified());
}

TEST(IpAddress, Hashable) {
  std::unordered_set<IpAddress> set;
  set.insert(IpAddress(10, 0, 0, 1));
  set.insert(IpAddress(10, 0, 0, 1));
  set.insert(IpAddress(10, 0, 0, 2));
  EXPECT_EQ(set.size(), 2u);
}

TEST(Endpoint, StrAndOrdering) {
  const Endpoint e{IpAddress(192, 168, 1, 9), 8080};
  EXPECT_EQ(e.str(), "192.168.1.9:8080");
  const Endpoint f{IpAddress(192, 168, 1, 9), 8081};
  EXPECT_LT(e, f);
  EXPECT_NE(e, f);
}

}  // namespace
}  // namespace tracemod::net
