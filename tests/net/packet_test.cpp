#include "net/packet.hpp"

#include <gtest/gtest.h>

namespace tracemod::net {
namespace {

TEST(Packet, IcmpWireSize) {
  const Packet p = make_icmp_packet(IpAddress(10, 0, 0, 1),
                                    IpAddress(10, 0, 0, 2), IcmpHeader{}, 56);
  EXPECT_EQ(p.l4_header_bytes(), kIcmpHeaderBytes);
  EXPECT_EQ(p.ip_size(), 20u + 8u + 56u);
  EXPECT_EQ(p.wire_size(), 18u + 20u + 8u + 56u);
}

TEST(Packet, UdpWireSize) {
  const Packet p = make_udp_packet(IpAddress(10, 0, 0, 1),
                                   IpAddress(10, 0, 0, 2), 111, 2049, 1024);
  EXPECT_EQ(p.ip_size(), 20u + 8u + 1024u);
  EXPECT_EQ(p.udp().src_port, 111);
  EXPECT_EQ(p.udp().dst_port, 2049);
}

TEST(Packet, TcpWireSizeAndFlags) {
  TcpHeader hdr;
  hdr.syn = true;
  hdr.ack_flag = true;
  const Packet p = make_tcp_packet(IpAddress(10, 0, 0, 1),
                                   IpAddress(10, 0, 0, 2), hdr, 0);
  EXPECT_EQ(p.ip_size(), 20u + 20u);
  EXPECT_EQ(p.tcp().flags_str(), "SA");
  TcpHeader plain;
  EXPECT_EQ(plain.flags_str(), ".");
}

TEST(Packet, DescribeMentionsProtocolAndAddresses) {
  const Packet p = make_udp_packet(IpAddress(1, 2, 3, 4),
                                   IpAddress(5, 6, 7, 8), 10, 20, 99);
  const std::string d = p.describe();
  EXPECT_NE(d.find("udp"), std::string::npos);
  EXPECT_NE(d.find("1.2.3.4"), std::string::npos);
  EXPECT_NE(d.find("99"), std::string::npos);
}

TEST(Packet, ProtocolNames) {
  EXPECT_STREQ(protocol_name(Protocol::kIcmp), "icmp");
  EXPECT_STREQ(protocol_name(Protocol::kUdp), "udp");
  EXPECT_STREQ(protocol_name(Protocol::kTcp), "tcp");
}

TEST(Packet, HeaderAccessorsMutate) {
  Packet p = make_tcp_packet(IpAddress(1, 1, 1, 1), IpAddress(2, 2, 2, 2),
                             TcpHeader{}, 0);
  p.tcp().seq = 12345;
  EXPECT_EQ(p.tcp().seq, 12345u);
}

}  // namespace
}  // namespace tracemod::net
