// IP fragmentation and reassembly.
#include <gtest/gtest.h>

#include "net/ethernet.hpp"
#include "net/node.hpp"

namespace tracemod::net {
namespace {

class RecordingHandler : public ProtocolHandler {
 public:
  void handle_packet(const Packet& pkt) override { packets.push_back(pkt); }
  std::vector<Packet> packets;
};

struct FragRig {
  sim::SimContext ctx;
  sim::EventLoop& loop{ctx.loop()};
  EthernetSegment segment{loop};
  Node a{ctx, "a"};
  Node b{ctx, "b"};
  RecordingHandler sink;

  FragRig() {
    auto da = std::make_unique<EthernetDevice>(segment, "a0");
    da->claim_address(IpAddress(10, 0, 0, 1));
    a.add_interface(std::move(da), IpAddress(10, 0, 0, 1));
    a.set_default_route(0);
    auto db = std::make_unique<EthernetDevice>(segment, "b0");
    db->claim_address(IpAddress(10, 0, 0, 2));
    b.add_interface(std::move(db), IpAddress(10, 0, 0, 2));
    b.set_default_route(0);
    b.register_protocol(Protocol::kUdp, &sink);
  }

  Packet big_udp(std::uint32_t payload) {
    Packet p = make_udp_packet(IpAddress{}, IpAddress(10, 0, 0, 2), 1, 2,
                               payload);
    p.payload = std::string("app-data");
    return p;
  }
};

/// Shim that counts and optionally drops wire-level packets.
class Counter : public DeviceShim {
 public:
  using DeviceShim::DeviceShim;
  int outbound = 0;
  int drop_index = -1;

 protected:
  void on_outbound(Packet pkt) override {
    if (outbound++ == drop_index) return;
    send_down(std::move(pkt));
  }
};

TEST(Fragmentation, SmallDatagramsAreNotFragmented) {
  FragRig rig;
  rig.a.send(rig.big_udp(1000));
  rig.loop.run();
  ASSERT_EQ(rig.sink.packets.size(), 1u);
  EXPECT_FALSE(rig.sink.packets[0].is_fragment());
  EXPECT_EQ(rig.a.stats().datagrams_fragmented, 0u);
}

TEST(Fragmentation, LargeDatagramSplitsAndReassembles) {
  FragRig rig;
  Counter* counter = nullptr;
  rig.a.wrap_interface(0, [&](std::unique_ptr<NetDevice> d) {
    auto c = std::make_unique<Counter>(std::move(d));
    counter = c.get();
    return c;
  });
  rig.a.send(rig.big_udp(8192));
  rig.loop.run();

  // 8192 + 8 byte UDP header at MTU 1500: 6 fragments on the wire.
  EXPECT_EQ(counter->outbound, 6);
  ASSERT_EQ(rig.sink.packets.size(), 1u);
  const Packet& whole = rig.sink.packets[0];
  EXPECT_EQ(whole.payload_size, 8192u);
  EXPECT_EQ(std::any_cast<std::string>(whole.payload), "app-data");
  EXPECT_EQ(rig.a.stats().datagrams_fragmented, 1u);
  EXPECT_EQ(rig.b.stats().datagrams_reassembled, 1u);
}

TEST(Fragmentation, AnyLostFragmentLosesTheDatagram) {
  for (int drop : {0, 3, 5}) {
    FragRig rig;
    Counter* counter = nullptr;
    rig.a.wrap_interface(0, [&](std::unique_ptr<NetDevice> d) {
      auto c = std::make_unique<Counter>(std::move(d));
      counter = c.get();
      return c;
    });
    counter->drop_index = drop;
    rig.a.send(rig.big_udp(8192));
    rig.loop.run();
    EXPECT_TRUE(rig.sink.packets.empty()) << "dropped fragment " << drop;
  }
}

TEST(Fragmentation, InterleavedDatagramsReassembleIndependently) {
  FragRig rig;
  rig.a.send(rig.big_udp(8192));
  rig.a.send(rig.big_udp(4000));
  rig.loop.run();
  ASSERT_EQ(rig.sink.packets.size(), 2u);
  EXPECT_EQ(rig.sink.packets[0].payload_size, 8192u);
  EXPECT_EQ(rig.sink.packets[1].payload_size, 4000u);
}

TEST(Fragmentation, DuplicateFragmentsAreHarmless) {
  // Duplicate delivery (e.g., a retried frame) must not double-deliver.
  FragRig rig;
  class Duper : public DeviceShim {
   public:
    using DeviceShim::DeviceShim;

   protected:
    void on_outbound(Packet pkt) override {
      Packet copy = pkt;
      send_down(std::move(pkt));
      send_down(std::move(copy));
    }
  };
  rig.a.wrap_interface(0, [](std::unique_ptr<NetDevice> d) {
    return std::make_unique<Duper>(std::move(d));
  });
  rig.a.send(rig.big_udp(8192));
  rig.loop.run();
  EXPECT_EQ(rig.sink.packets.size(), 1u);
}

TEST(Fragmentation, OnlyFirstFragmentCarriesPayloadState) {
  // A 64 KB datagram splits into dozens of fragments; the reassembly
  // handle (the shared_ptr to the original packet) must ride on fragment
  // 0 only, not be duplicated into every fragment on the wire.
  FragRig rig;
  std::vector<std::pair<std::uint16_t, bool>> frags;  // (index, has payload)
  class PayloadSpy : public DeviceShim {
   public:
    PayloadSpy(std::unique_ptr<NetDevice> d,
               std::vector<std::pair<std::uint16_t, bool>>* out)
        : DeviceShim(std::move(d)), out_(out) {}

   protected:
    void on_outbound(Packet pkt) override {
      if (pkt.is_fragment()) {
        out_->emplace_back(pkt.frag_index, pkt.payload.has_value());
      }
      send_down(std::move(pkt));
    }

   private:
    std::vector<std::pair<std::uint16_t, bool>>* out_;
  };
  rig.a.wrap_interface(0, [&](std::unique_ptr<NetDevice> d) {
    return std::make_unique<PayloadSpy>(std::move(d), &frags);
  });

  rig.a.send(rig.big_udp(64 * 1024));
  rig.loop.run();

  ASSERT_GT(frags.size(), 40u);  // 64 KB at MTU 1500: ~45 fragments
  for (const auto& [index, has_payload] : frags) {
    EXPECT_EQ(has_payload, index == 0)
        << "fragment " << index
        << (has_payload ? " duplicates" : " is missing")
        << " the payload handle";
  }
  // Reassembly is unaffected: the datagram arrives whole, payload intact.
  ASSERT_EQ(rig.sink.packets.size(), 1u);
  EXPECT_EQ(rig.sink.packets[0].payload_size, 64u * 1024u);
  EXPECT_EQ(std::any_cast<std::string>(rig.sink.packets[0].payload),
            "app-data");
  EXPECT_EQ(rig.b.stats().datagrams_reassembled, 1u);
}

TEST(Fragmentation, FragmentWireSizesAreBounded) {
  FragRig rig;
  std::vector<std::uint32_t> sizes;
  class Sizer : public DeviceShim {
   public:
    Sizer(std::unique_ptr<NetDevice> d, std::vector<std::uint32_t>* out)
        : DeviceShim(std::move(d)), out_(out) {}

   protected:
    void on_outbound(Packet pkt) override {
      out_->push_back(pkt.ip_size());
      send_down(std::move(pkt));
    }

   private:
    std::vector<std::uint32_t>* out_;
  };
  rig.a.wrap_interface(0, [&](std::unique_ptr<NetDevice> d) {
    return std::make_unique<Sizer>(std::move(d), &sizes);
  });
  rig.a.send(rig.big_udp(8192));
  rig.loop.run();
  std::uint32_t total_payload = 0;
  for (std::uint32_t s : sizes) {
    EXPECT_LE(s, kMtuBytes);
    total_payload += s - kIpHeaderBytes - kUdpHeaderBytes;
  }
  EXPECT_EQ(total_payload, 8192u);
}

}  // namespace
}  // namespace tracemod::net
