#include "net/node.hpp"

#include <gtest/gtest.h>

#include "net/ethernet.hpp"

namespace tracemod::net {
namespace {

class RecordingHandler : public ProtocolHandler {
 public:
  void handle_packet(const Packet& pkt) override { packets.push_back(pkt); }
  std::vector<Packet> packets;
};

/// Two hosts on one segment, with addresses and default routes.
struct TwoHosts {
  sim::SimContext ctx;
  sim::EventLoop& loop{ctx.loop()};
  EthernetSegment segment{loop};
  Node a{ctx, "a"};
  Node b{ctx, "b"};
  IpAddress addr_a{10, 0, 0, 1};
  IpAddress addr_b{10, 0, 0, 2};

  TwoHosts() {
    auto dev_a = std::make_unique<EthernetDevice>(segment, "a-eth0");
    dev_a->claim_address(addr_a);
    a.add_interface(std::move(dev_a), addr_a);
    a.set_default_route(0);

    auto dev_b = std::make_unique<EthernetDevice>(segment, "b-eth0");
    dev_b->claim_address(addr_b);
    b.add_interface(std::move(dev_b), addr_b);
    b.set_default_route(0);
  }
};

TEST(Node, SendFillsSourceAndIdAndDelivers) {
  TwoHosts net;
  RecordingHandler handler;
  net.b.register_protocol(Protocol::kUdp, &handler);

  Packet p = make_udp_packet(IpAddress{}, net.addr_b, 5, 6, 10);
  EXPECT_TRUE(net.a.send(std::move(p)));
  net.loop.run();

  ASSERT_EQ(handler.packets.size(), 1u);
  EXPECT_EQ(handler.packets[0].src, net.addr_a);
  EXPECT_NE(handler.packets[0].id, 0u);
  EXPECT_EQ(net.a.stats().sent, 1u);
  EXPECT_EQ(net.b.stats().received, 1u);
}

TEST(Node, NoRouteCountsAndReturnsFalse) {
  sim::SimContext ctx;
  Node n(ctx, "lonely");
  Packet p = make_udp_packet(IpAddress{}, IpAddress(1, 2, 3, 4), 5, 6, 10);
  EXPECT_FALSE(n.send(std::move(p)));
  EXPECT_EQ(n.stats().no_route, 1u);
}

TEST(Node, UnclaimedProtocolCounted) {
  TwoHosts net;
  // No handler registered on b.
  net.a.send(make_udp_packet(IpAddress{}, net.addr_b, 5, 6, 10));
  net.loop.run();
  EXPECT_EQ(net.b.stats().unclaimed_protocol, 1u);
}

TEST(Node, LongestPrefixRouteWins) {
  sim::SimContext ctx;
  sim::EventLoop& loop = ctx.loop();
  EthernetSegment seg_wide(loop), seg_narrow(loop);
  Node n(ctx, "router");

  auto wide = std::make_unique<EthernetDevice>(seg_wide, "wide");
  auto narrow = std::make_unique<EthernetDevice>(seg_narrow, "narrow");
  EthernetDevice wide_sink(seg_wide, "wide-sink");
  EthernetDevice narrow_sink(seg_narrow, "narrow-sink");
  wide_sink.claim_address(IpAddress(10, 1, 2, 3));
  narrow_sink.claim_address(IpAddress(10, 1, 2, 3));

  n.add_interface(std::move(wide), IpAddress(10, 0, 0, 1));
  n.add_interface(std::move(narrow), IpAddress(10, 1, 0, 1));
  n.add_route(IpAddress(10, 0, 0, 0), 8, 0);
  n.add_route(IpAddress(10, 1, 0, 0), 16, 1);

  int got_wide = 0, got_narrow = 0;
  wide_sink.set_receive_callback([&](Packet) { ++got_wide; });
  narrow_sink.set_receive_callback([&](Packet) { ++got_narrow; });

  n.send(make_udp_packet(IpAddress{}, IpAddress(10, 1, 2, 3), 1, 2, 8));
  loop.run();
  EXPECT_EQ(got_wide, 0);
  EXPECT_EQ(got_narrow, 1);
}

TEST(Node, ForwardingDecrementsTtlAndRoutes) {
  // a --- seg1 --- router --- seg2 --- b
  sim::SimContext ctx;
  sim::EventLoop& loop = ctx.loop();
  EthernetSegment seg1(loop), seg2(loop);
  Node a(ctx, "a"), router(ctx, "r"), b(ctx, "b");

  IpAddress addr_a(10, 1, 0, 2), addr_b(10, 2, 0, 2);
  IpAddress r1(10, 1, 0, 1), r2(10, 2, 0, 1);

  auto dev_a = std::make_unique<EthernetDevice>(seg1, "a0");
  dev_a->claim_address(addr_a);
  a.add_interface(std::move(dev_a), addr_a);
  a.set_default_route(0);

  auto dev_r1 = std::make_unique<EthernetDevice>(seg1, "r0");
  dev_r1->claim_address(r1);
  dev_r1->claim_address(addr_b);  // router answers for b's subnet on seg1
  auto dev_r2 = std::make_unique<EthernetDevice>(seg2, "r1");
  dev_r2->claim_address(r2);
  dev_r2->claim_address(addr_a);  // and for a's subnet on seg2
  router.add_interface(std::move(dev_r1), r1);
  router.add_interface(std::move(dev_r2), r2);
  router.add_route(IpAddress(10, 1, 0, 0), 16, 0);
  router.add_route(IpAddress(10, 2, 0, 0), 16, 1);
  router.set_forwarding(true);

  auto dev_b = std::make_unique<EthernetDevice>(seg2, "b0");
  dev_b->claim_address(addr_b);
  b.add_interface(std::move(dev_b), addr_b);
  b.set_default_route(0);

  RecordingHandler handler;
  b.register_protocol(Protocol::kUdp, &handler);

  a.send(make_udp_packet(IpAddress{}, addr_b, 7, 8, 32));
  loop.run();

  ASSERT_EQ(handler.packets.size(), 1u);
  EXPECT_EQ(handler.packets[0].ttl, 63);
  EXPECT_EQ(router.stats().forwarded, 1u);
}

TEST(Node, TtlExpiryDropsPacket) {
  TwoHosts net;
  net.a.set_forwarding(true);
  // Hand the node a packet for someone else with ttl=1 via the receive path.
  Packet p = make_udp_packet(IpAddress(9, 9, 9, 9), IpAddress(8, 8, 8, 8), 1,
                             2, 4);
  p.ttl = 1;
  net.a.device(0);  // ensure interface exists
  // Inject through the node's receive callback by transmitting from b with
  // b's device claiming nothing special: send directly.
  // Simpler: call the private path via a crafted claim: a claims 8.8.8.8? No.
  // Instead verify through the router path: set default route and forward.
  net.a.set_default_route(0);
  // Use friend-free approach: the packet arrives at a addressed elsewhere.
  auto dev = std::make_unique<EthernetDevice>(net.segment, "x");
  dev->claim_address(IpAddress(7, 7, 7, 7));
  Node x(net.ctx, "x");
  x.add_interface(std::move(dev), IpAddress(7, 7, 7, 7));
  x.set_default_route(0);
  // a's ethernet device must accept the packet: claim the destination.
  static_cast<EthernetDevice&>(net.a.device(0)).claim_address(IpAddress(8, 8, 8, 8));
  Packet q = make_udp_packet(IpAddress{}, IpAddress(8, 8, 8, 8), 1, 2, 4);
  q.ttl = 1;
  x.send(std::move(q));
  net.loop.run();
  EXPECT_EQ(net.a.stats().ttl_expired, 1u);
}

TEST(Node, WrapInterfacePreservesDelivery) {
  TwoHosts net;
  RecordingHandler handler;
  net.b.register_protocol(Protocol::kUdp, &handler);

  // Wrap b's device in a pass-through shim after construction.
  net.b.wrap_interface(0, [](std::unique_ptr<NetDevice> inner) {
    class PassThrough : public DeviceShim {
     public:
      using DeviceShim::DeviceShim;
    };
    return std::make_unique<PassThrough>(std::move(inner));
  });

  net.a.send(make_udp_packet(IpAddress{}, net.addr_b, 5, 6, 10));
  net.loop.run();
  EXPECT_EQ(handler.packets.size(), 1u);
}

TEST(Node, HasAddressChecksAllInterfaces) {
  TwoHosts net;
  EXPECT_TRUE(net.a.has_address(net.addr_a));
  EXPECT_FALSE(net.a.has_address(net.addr_b));
}

}  // namespace
}  // namespace tracemod::net
