#include "net/ethernet.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tracemod::net {
namespace {

Packet test_packet(IpAddress dst, std::uint32_t size) {
  return make_udp_packet(IpAddress(10, 0, 0, 1), dst, 1, 2, size);
}

struct Bus {
  sim::EventLoop loop;
  EthernetSegment segment{loop};
  EthernetDevice a{segment, "eth-a"};
  EthernetDevice b{segment, "eth-b"};
  IpAddress addr_a{10, 0, 0, 1};
  IpAddress addr_b{10, 0, 0, 2};
  Bus() {
    a.claim_address(addr_a);
    b.claim_address(addr_b);
  }
};

TEST(Ethernet, DeliversToClaimant) {
  Bus bus;
  std::vector<Packet> got;
  bus.b.set_receive_callback([&](Packet p) { got.push_back(std::move(p)); });
  bus.a.transmit(test_packet(bus.addr_b, 100));
  bus.loop.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].dst, bus.addr_b);
}

TEST(Ethernet, DoesNotDeliverToSenderOrNonClaimant) {
  Bus bus;
  int got_a = 0, got_b = 0;
  bus.a.set_receive_callback([&](Packet) { ++got_a; });
  bus.b.set_receive_callback([&](Packet) { ++got_b; });
  bus.a.transmit(test_packet(IpAddress(10, 0, 0, 99), 100));  // unclaimed
  bus.loop.run();
  EXPECT_EQ(got_a, 0);
  EXPECT_EQ(got_b, 0);
}

TEST(Ethernet, SerializationDelayMatchesBandwidth) {
  Bus bus;
  sim::TimePoint arrival{};
  bus.b.set_receive_callback([&](Packet) { arrival = bus.loop.now(); });
  Packet p = test_packet(bus.addr_b, 1000 - kEthernetHeaderBytes - 28);
  const double expected_tx = 1000.0 * 8.0 / 10e6;  // 1000B at 10 Mb/s
  bus.a.transmit(std::move(p));
  bus.loop.run();
  const double prop = sim::to_seconds(bus.segment.config().propagation);
  EXPECT_NEAR(sim::to_seconds(arrival), expected_tx + prop, 1e-9);
}

TEST(Ethernet, BackToBackFramesSerialize) {
  Bus bus;
  std::vector<sim::TimePoint> arrivals;
  bus.b.set_receive_callback([&](Packet) { arrivals.push_back(bus.loop.now()); });
  for (int i = 0; i < 3; ++i) bus.a.transmit(test_packet(bus.addr_b, 954));
  bus.loop.run();
  ASSERT_EQ(arrivals.size(), 3u);
  // Each 1000B frame takes 800us on the wire + 10us interframe gap.
  const auto gap01 = arrivals[1] - arrivals[0];
  const auto gap12 = arrivals[2] - arrivals[1];
  EXPECT_NEAR(sim::to_seconds(gap01), 810e-6, 1e-8);
  EXPECT_NEAR(sim::to_seconds(gap12), 810e-6, 1e-8);
}

TEST(Ethernet, TwoSendersShareTheBus) {
  Bus bus;
  EthernetDevice c(bus.segment, "eth-c");
  IpAddress addr_c(10, 0, 0, 3);
  c.claim_address(addr_c);

  int got = 0;
  sim::TimePoint last{};
  bus.b.set_receive_callback([&](Packet) {
    ++got;
    last = bus.loop.now();
  });
  // a and c both blast a frame at b at t=0; the bus must serialize them.
  bus.a.transmit(test_packet(bus.addr_b, 954));
  c.transmit(test_packet(bus.addr_b, 954));
  bus.loop.run();
  EXPECT_EQ(got, 2);
  EXPECT_GT(sim::to_seconds(last), 2 * 800e-6);  // second frame waited
}

TEST(Ethernet, QueueOverflowDrops) {
  Bus bus;
  int got = 0;
  bus.b.set_receive_callback([&](Packet) { ++got; });
  // Queue holds 128 packets; one more is in flight.  Blast 200.
  for (int i = 0; i < 200; ++i) bus.a.transmit(test_packet(bus.addr_b, 954));
  bus.loop.run();
  EXPECT_EQ(got, 129);
  EXPECT_EQ(bus.a.queue_stats().dropped, 200u - 129u);
}

TEST(Ethernet, BridgeClaimsForeignAddress) {
  // A WavePoint-style bridge claims the mobile host's address on the wire.
  Bus bus;
  IpAddress mobile(10, 9, 9, 9);
  bus.b.claim_address(mobile);
  int got = 0;
  bus.b.set_receive_callback([&](Packet) { ++got; });
  bus.a.transmit(test_packet(mobile, 64));
  bus.loop.run();
  EXPECT_EQ(got, 1);
  bus.b.unclaim_address(mobile);
  bus.a.transmit(test_packet(mobile, 64));
  bus.loop.run();
  EXPECT_EQ(got, 1);  // unclaimed now
}

TEST(Ethernet, FramesCarriedCounter) {
  Bus bus;
  bus.b.set_receive_callback([](Packet) {});
  for (int i = 0; i < 5; ++i) bus.a.transmit(test_packet(bus.addr_b, 100));
  bus.loop.run();
  EXPECT_EQ(bus.segment.frames_carried(), 5u);
}

}  // namespace
}  // namespace tracemod::net
