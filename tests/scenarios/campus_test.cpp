// The campus-at-scale contracts (ISSUE 6 / DESIGN.md section 11):
//   - a giant spatial cell reproduces the seed scenarios byte-for-byte;
//   - serial and parallel sharded runs produce the same digest;
//   - repeat runs with one seed are deterministic, different seeds differ;
//   - a supervised campus run reaches its virtual horizon.
#include "scenarios/campus.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "scenarios/live_testbed.hpp"
#include "scenarios/scenario.hpp"
#include "trace/trace_io.hpp"

namespace tracemod::scenarios {
namespace {

/// Runs a collection traversal and returns the serialized trace bytes --
/// the strongest equivalence handle the repo has.
std::string trace_bytes(const Scenario& scenario, std::uint64_t seed) {
  LiveTestbed testbed(scenario, seed);
  const trace::CollectedTrace trace = testbed.collect_trace();
  std::ostringstream out;
  trace::write_trace(out, trace);
  return out.str();
}

TEST(ShardedEquivalence, GiantCellReproducesSeedScenariosByteForByte) {
  // One cell big enough for all geometry must be indistinguishable from
  // the flat seed medium: same candidate order, same busy arithmetic,
  // same rng draws, so the collected traces serialize identically.
  for (Scenario scenario : {porter(), flagstaff(), wean()}) {
    SCOPED_TRACE(scenario.name);
    const std::string flat = trace_bytes(scenario, 7);
    scenario.channel.spatial.cell_size = 1e6;
    const std::string giant = trace_bytes(scenario, 7);
    EXPECT_EQ(flat, giant);
  }
}

TEST(ShardedEquivalence, CampusWalkScenarioRunsTheCollectionPipeline) {
  // The campus_walk Scenario exercises the sharded medium through the
  // same LiveTestbed/collection path as the paper's four.
  const Scenario scenario = campus_walk();
  ASSERT_TRUE(scenario.channel.spatial.sharded());
  LiveTestbed testbed(scenario, 11);
  const trace::CollectedTrace trace = testbed.collect_trace();
  EXPECT_GT(trace.records.size(), 100u);
  // And it stays deterministic under a fixed seed.
  EXPECT_EQ(trace_bytes(scenario, 11), trace_bytes(scenario, 11));
}

CampusConfig small_campus(unsigned threads) {
  CampusConfig cfg;
  cfg.hosts = 400;
  cfg.horizon = sim::seconds(10);
  cfg.seed = 1234;
  cfg.threads = threads;
  return cfg;
}

TEST(Campus, SerialAndParallelRunsShareOneDigest) {
  const CampusResult serial = run_campus(small_campus(0));
  const CampusResult parallel = run_campus(small_campus(4));
  ASSERT_TRUE(serial.ok);
  ASSERT_TRUE(parallel.ok);
  EXPECT_EQ(serial.digest, parallel.digest);
  EXPECT_EQ(serial.events, parallel.events);
  EXPECT_EQ(serial.frames_delivered, parallel.frames_delivered);
  EXPECT_EQ(serial.handoffs, parallel.handoffs);
  EXPECT_EQ(serial.echoes_received, parallel.echoes_received);
}

TEST(Campus, RepeatRunsAreDeterministicAndSeedsMatter) {
  const CampusResult a = run_campus(small_campus(0));
  const CampusResult b = run_campus(small_campus(0));
  EXPECT_EQ(a.digest, b.digest);

  CampusConfig other = small_campus(0);
  other.seed = 99;
  const CampusResult c = run_campus(other);
  EXPECT_NE(a.digest, c.digest);
}

TEST(Campus, SupervisedRunReachesTheHorizon) {
  CampusConfig cfg = small_campus(0);
  cfg.hosts = 200;
  const CampusResult r = run_campus(cfg);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, RunStatus::kCompleted);
  EXPECT_NEAR(r.virtual_s, 10.0, 1e-6);
  EXPECT_EQ(r.hosts, 200u);
  EXPECT_GT(r.wavepoints, 0u);
  EXPECT_GT(r.events, 0u);
  EXPECT_GT(r.uplink_sent, 0u);
  EXPECT_GT(r.echoes_received, 0u);
  // Sharded: the WavePoint grid occupies many cells.
  EXPECT_GT(r.occupied_cells, 1u);
}

TEST(Campus, HostsRoamInsideTheQuad) {
  CampusConfig cfg = small_campus(0);
  cfg.hosts = 50;
  CampusWorld world(cfg);
  const double side = world.side_m();
  ASSERT_GT(side, 0.0);
  // Group members ride at small rigid offsets from an in-quad leader, so
  // allow the ring radius beyond the walls.
  const double slack = 5.0;
  for (std::size_t h = 0; h < world.hosts(); ++h) {
    for (double t : {0.0, 5.0, 9.0}) {
      const wireless::Vec2 p =
          world.host_position(h, sim::kEpoch + sim::from_seconds(t));
      EXPECT_GE(p.x, -slack);
      EXPECT_LE(p.x, side + slack);
      EXPECT_GE(p.y, -slack);
      EXPECT_LE(p.y, side + slack);
    }
  }
}

}  // namespace
}  // namespace tracemod::scenarios
