// End-to-end methodology tests: collection -> distillation -> modulation on
// real scenarios, checking the properties the paper's evaluation rests on.
#include <gtest/gtest.h>

#include <sstream>

#include "core/distiller.hpp"
#include "core/emulator.hpp"
#include "scenarios/experiment.hpp"
#include "sim/metric_names.hpp"
#include "trace/fault_injector.hpp"
#include "trace/trace_io.hpp"

namespace tracemod::scenarios {
namespace {

TEST(Pipeline, PorterCollectionProducesAFullTrace) {
  const auto raw = collect_raw_trace(porter(), 555);
  EXPECT_GT(raw.records.size(), 500u);
  EXPECT_GT(raw.echo_replies().size(), 200u);
  EXPECT_GT(raw.device_records().size(), 100u);

  core::Distiller distiller;
  const auto replay = distiller.distill(raw);
  // One tuple per second of traversal.
  const double seconds = sim::to_seconds(porter().collection_duration);
  EXPECT_NEAR(static_cast<double>(replay.size()), seconds, 5.0);
  EXPECT_GT(distiller.stats().groups_total, 80u);
}

TEST(Pipeline, DistilledParametersAreInWaveLanRange) {
  for (const auto& scenario : all_scenarios()) {
    core::Distiller distiller;
    const auto replay = distiller.distill(collect_raw_trace(scenario, 777));
    ASSERT_FALSE(replay.empty()) << scenario.name;
    for (const auto& t : replay.tuples()) {
      EXPECT_GE(t.latency_s, 0.0) << scenario.name;
      EXPECT_LT(t.latency_s, 1.0) << scenario.name;
      EXPECT_GT(t.per_byte_bottleneck, 8.0 / 5e6) << scenario.name;  // < 5 Mb/s
      EXPECT_LT(t.per_byte_bottleneck, 8.0 / 100e3) << scenario.name;
      EXPECT_GE(t.loss, 0.0);
      EXPECT_LE(t.loss, 0.99);
      EXPECT_GE(t.per_byte_residual, 0.0);
    }
    // Typical bandwidth in the WaveLAN band the paper reports.
    const double bw = 8.0 / replay.mean_bottleneck_per_byte();
    EXPECT_GT(bw, 0.6e6) << scenario.name;
    EXPECT_LT(bw, 2.0e6) << scenario.name;
  }
}

TEST(Pipeline, WeanElevatorShowsUpInTheTrace) {
  core::Distiller distiller;
  const auto replay = distiller.distill(collect_raw_trace(wean(), 999));
  ASSERT_GT(replay.size(), 100u);
  // Locate the elevator ride (~95-130 s) and a clean stretch (~40-70 s).
  double ride_worst_loss = 0, clean_worst_loss = 0;
  sim::Duration off{};
  for (const auto& t : replay.tuples()) {
    const double at = sim::to_seconds(off);
    off += t.d;
    if (at > 92 && at < 130) {
      ride_worst_loss = std::max(ride_worst_loss, t.loss);
    } else if (at > 35 && at < 70) {
      clean_worst_loss = std::max(clean_worst_loss, t.loss);
    }
  }
  EXPECT_GT(ride_worst_loss, 0.15);
  EXPECT_LT(clean_worst_loss, 0.10);
}

TEST(Pipeline, TrialsVaryButModestly) {
  // "When the same benchmark is run over distinct distilled traces intended
  // to duplicate the same path, the results can show significant variance"
  // -- but the traces must still describe the same scenario.
  ExperimentConfig cfg;
  cfg.trials = 3;
  const auto traces = collect_replay_traces(porter(), cfg);
  ASSERT_EQ(traces.size(), 3u);
  std::vector<double> bws;
  for (const auto& t : traces) {
    bws.push_back(8.0 / t.mean_bottleneck_per_byte());
  }
  // All trials in the same band...
  for (double bw : bws) {
    EXPECT_GT(bw, 0.8e6);
    EXPECT_LT(bw, 1.8e6);
  }
  // ...but not identical (different channel randomness).
  EXPECT_NE(bws[0], bws[1]);
}

TEST(Pipeline, EthernetBaselineIsDeterministicAndFast) {
  ExperimentConfig cfg;
  cfg.trials = 2;
  const auto outcomes = run_ethernet_trials(BenchmarkKind::kFtpRecv, cfg);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].ok);
  EXPECT_NEAR(outcomes[0].elapsed_s, 19.5, 1.0);  // disk-paced 10 MB
  EXPECT_DOUBLE_EQ(outcomes[0].elapsed_s, outcomes[1].elapsed_s);
}

TEST(Pipeline, ModulatedFtpTracksLiveFtp) {
  // The paper's headline: modulated performance approximates live
  // performance.  One trial each to keep the test fast; the benches run
  // the full 4-trial protocol.
  const auto scenario = wean();
  LiveTestbed bed(scenario, 4321);
  const auto live = run_benchmark(BenchmarkKind::kFtpRecv, bed.mobile(),
                                  bed.server(), bed.server_addr(), bed.loop());
  ASSERT_TRUE(live.ok);

  core::Distiller distiller;
  const auto trace = distiller.distill(collect_raw_trace(scenario, 4322));
  const auto modulated = run_modulated_benchmark(
      trace, BenchmarkKind::kFtpRecv, 4323, sim::milliseconds(10),
      measure_compensation_vb());
  ASSERT_TRUE(modulated.ok);

  EXPECT_NEAR(modulated.elapsed_s, live.elapsed_s, live.elapsed_s * 0.25);
}

TEST(Pipeline, FaultInjectedRunSurvivesCorruptionEndToEnd) {
  // The robustness pipeline end to end: collect -> corrupt the serialized
  // trace -> salvage-read -> distill -> modulate under an unreliable
  // daemon.  The run must complete with bounded outputs, and every injected
  // degradation must be visible in metrics.
  const auto raw = collect_raw_trace(porter(), 20268);
  ASSERT_GT(raw.records.size(), 500u);

  std::ostringstream out;
  trace::write_trace(out, raw);
  std::string bytes = out.str();

  std::ostringstream empty;
  trace::write_trace(empty, trace::CollectedTrace{});
  const std::size_t header = empty.str().size();

  trace::FaultInjector injector{sim::Rng(99)};
  injector.flip_bytes(bytes, 25, header);

  sim::MetricsRegistry read_metrics;
  std::istringstream in(bytes);
  const auto salvaged = trace::read_trace_ex(
      in, trace::TraceReadOptions{trace::ReadMode::kSalvage, &read_metrics});
  EXPECT_GT(salvaged.report.crc_failures, 0u);
  EXPECT_GT(salvaged.report.records_salvaged, 0u);
  EXPECT_GT(read_metrics.value(sim::metric::kCrcFailures), 0u);
  EXPECT_GT(read_metrics.value(sim::metric::kRecordsSalvaged), 0u);
  // 25 flips can kill at most 25 + 25 records (flip-in-length resyncs).
  EXPECT_GE(salvaged.report.records_read, raw.records.size() - 50);

  core::Distiller distiller;
  const auto replay = distiller.distill(salvaged.trace);
  ASSERT_FALSE(replay.empty());
  for (const auto& t : replay.tuples()) {
    EXPECT_GE(t.latency_s, 0.0);
    EXPECT_LT(t.latency_s, 1.0);
    EXPECT_GE(t.loss, 0.0);
    EXPECT_LE(t.loss, 1.0);
  }

  core::EmulatorConfig ecfg;
  ecfg.seed = 20269;
  ecfg.modulation.tick = sim::milliseconds(10);
  ecfg.daemon_faults.stall_chance = 0.2;
  ecfg.daemon_faults.stall = sim::milliseconds(20);
  ecfg.daemon_faults.wakeup_factor = 2.0;
  core::Emulator emulator(replay, ecfg);
  const auto outcome =
      run_benchmark(BenchmarkKind::kFtpRecv, emulator.mobile(),
                    emulator.server(), ecfg.server_addr, emulator.loop());
  EXPECT_TRUE(outcome.ok);
  EXPECT_GT(outcome.elapsed_s, 0.0);
  EXPECT_LT(outcome.elapsed_s, 10000.0);
  EXPECT_GT(emulator.context().metrics().value(
                sim::metric::kDaemonStarvedTicks),
            0u);
  EXPECT_EQ(emulator.daemon().stalled_wakeups(),
            emulator.context().metrics().value(
                sim::metric::kDaemonStarvedTicks));
}

TEST(Pipeline, FaultInjectedRunIsDeterministic) {
  // Injected faults come from seeded streams, so a corrupted run replays
  // bit-identically.
  auto run_once = [] {
    core::EmulatorConfig ecfg;
    ecfg.seed = 31337;
    // A small pseudo-device buffer forces many daemon wakeups, so the
    // stall die is rolled often.
    ecfg.replay_buffer_capacity = 8;
    ecfg.daemon_faults.stall_chance = 0.3;
    ecfg.daemon_faults.stall = sim::milliseconds(15);
    core::Emulator emulator(
        core::ReplayTrace::wavelan_like(sim::seconds(300)), ecfg);
    const auto outcome =
        run_benchmark(BenchmarkKind::kWeb, emulator.mobile(),
                      emulator.server(), ecfg.server_addr, emulator.loop());
    return std::make_pair(outcome.elapsed_s,
                          emulator.daemon().stalled_wakeups());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_GT(a.second, 0u);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(Pipeline, SummaryHelpers) {
  Summary a{100.0, 5.0, 4};
  Summary b{104.0, 2.0, 4};
  EXPECT_TRUE(within_error(a, b));
  EXPECT_NEAR(off_by_factor(a, b), 4.0 / 7.0, 1e-12);
  EXPECT_EQ(check_label(a, b), "within error");

  Summary c{120.0, 1.0, 4};
  EXPECT_FALSE(within_error(a, c));
  EXPECT_EQ(check_label(a, c), "off by 3.33x sd-sum");

  const Summary s = summarize({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_EQ(s.n, 3u);
  EXPECT_EQ(cell(Summary{161.47, 7.82, 4}), "161.47 (7.82)");
}

TEST(Pipeline, BenchmarkKindNames) {
  EXPECT_STREQ(to_string(BenchmarkKind::kWeb), "web");
  EXPECT_STREQ(to_string(BenchmarkKind::kFtpSend), "ftp-send");
  EXPECT_STREQ(to_string(BenchmarkKind::kFtpRecv), "ftp-recv");
  EXPECT_STREQ(to_string(BenchmarkKind::kAndrew), "andrew");
}

}  // namespace
}  // namespace tracemod::scenarios
