// Audit-in-the-experiment-loop tests: enabling audits perturbs no trial
// result (the acceptance pin behind CI's seed diff), serial and parallel
// audit batches agree, and the audit.* metric family obeys the central
// metric-name declaration (the drift test's audit extension).
#include <gtest/gtest.h>

#include <sstream>

#include "audit/auditor.hpp"
#include "scenarios/parallel_runner.hpp"
#include "sim/metric_names.hpp"

namespace tracemod::scenarios {
namespace {

ExperimentConfig quick_config(bool audit) {
  ExperimentConfig cfg;
  cfg.trials = 2;
  cfg.audit.enabled = audit;
  return cfg;
}

TEST(AuditPipeline, EnablingAuditsDoesNotPerturbAnyTrialResult) {
  // Audit worlds are separate SimContexts; every virtual-time result must
  // be bit-identical with auditing on or off.
  ParallelRunner runner(4);
  const auto off =
      runner.experiment(wean(), BenchmarkKind::kWeb, quick_config(false));
  const auto on =
      runner.experiment(wean(), BenchmarkKind::kWeb, quick_config(true));

  ASSERT_EQ(off.live.size(), on.live.size());
  ASSERT_EQ(off.modulated.size(), on.modulated.size());
  for (std::size_t t = 0; t < off.live.size(); ++t) {
    EXPECT_EQ(off.live[t].ok, on.live[t].ok);
    EXPECT_DOUBLE_EQ(off.live[t].elapsed_s, on.live[t].elapsed_s);
  }
  for (std::size_t t = 0; t < off.modulated.size(); ++t) {
    EXPECT_EQ(off.modulated[t].ok, on.modulated[t].ok);
    EXPECT_DOUBLE_EQ(off.modulated[t].elapsed_s, on.modulated[t].elapsed_s);
  }
  ASSERT_EQ(off.traces.size(), on.traces.size());
  for (std::size_t t = 0; t < off.traces.size(); ++t) {
    std::ostringstream a, b;
    off.traces[t].serialize(a);
    on.traces[t].serialize(b);
    EXPECT_EQ(a.str(), b.str());
  }

  // And the audits themselves only exist when asked for.
  EXPECT_TRUE(off.audits.empty());
  ASSERT_EQ(on.audits.size(), on.traces.size());
  for (std::size_t t = 0; t < on.audits.size(); ++t) {
    EXPECT_EQ(on.audits[t].label, "trial" + std::to_string(t));
    EXPECT_GT(on.audits[t].scores.windows.size(), 0u);
  }
}

TEST(AuditPipeline, SerialAndParallelAuditBatchesAgree) {
  const ExperimentConfig cfg = quick_config(true);
  ParallelRunner runner(4);
  const auto traces = runner.replay_traces(wean(), cfg);
  ASSERT_EQ(traces.size(), 2u);

  const auto serial = run_trace_audits(traces, cfg, "wean");
  const auto parallel = runner.trace_audits(traces, cfg, "wean");
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t t = 0; t < serial.size(); ++t) {
    EXPECT_EQ(serial[t].label, parallel[t].label);
    EXPECT_EQ(serial[t].verdict, parallel[t].verdict);
    std::ostringstream a, b;
    audit::write_fidelity_json(a, serial[t]);
    audit::write_fidelity_json(b, parallel[t]);
    EXPECT_EQ(a.str(), b.str());
  }
}

TEST(AuditPipeline, AuditMetricFamilyIsDeclaredCentrally) {
  // The drift test, extended to the audit.* family and the series /
  // histogram channels: every name an audit snapshot emits must be listed
  // in sim/metric_names.hpp.
  const core::ReplayTrace reference =
      core::ReplayTrace::wavelan_like(sim::seconds(60));
  audit::AuditConfig acfg;
  acfg.baseline_run = sim::seconds(10);
  const audit::FidelityReport report = audit::audit_trace(reference, acfg);
  const sim::TelemetrySnapshot snap = audit::telemetry_snapshot(report);

  ASSERT_FALSE(snap.counters.empty());
  ASSERT_FALSE(snap.series.empty());
  for (const auto& [name, value] : snap.counters) {
    bool declared = false;
    for (const char* known : sim::metric::kAllCounterNames) {
      declared |= name == known;
    }
    EXPECT_TRUE(declared) << "counter '" << name
                          << "' is not declared in sim/metric_names.hpp";
    EXPECT_EQ(name.rfind("audit.", 0), 0u)
        << "audit snapshots must only emit the audit.* family";
  }
  for (const auto& [name, series] : snap.series) {
    bool declared = false;
    for (const char* known : sim::metric::kAllSeriesNames) {
      declared |= name == known;
    }
    EXPECT_TRUE(declared) << "series '" << name
                          << "' is not declared in sim/metric_names.hpp";
  }
  // The three divergence axes must all be present by their declared names.
  auto has_series = [&](const char* want) {
    for (const auto& [name, series] : snap.series) {
      if (name == want) return !series.empty();
    }
    return false;
  };
  EXPECT_TRUE(has_series(sim::metric::kAuditLatencyRelErr));
  EXPECT_TRUE(has_series(sim::metric::kAuditBandwidthRelErr));
  EXPECT_TRUE(has_series(sim::metric::kAuditLossDelta));
}

}  // namespace
}  // namespace tracemod::scenarios
