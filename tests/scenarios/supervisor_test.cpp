// The supervision contract (scenarios/supervisor.hpp, DESIGN.md section
// 10): a poisoned trial degrades exactly one cell entry while every other
// world stays bit-identical; serial and parallel supervised runs agree on
// results AND error records; deterministic retry recovers flaky trials
// without changing a single bit of the clean outcomes; watchdogs bound
// runaway worlds; and a journal survives kills, truncation, and bit flips
// without ever resuming from damaged records.
#include "scenarios/supervisor.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scenarios/parallel_runner.hpp"
#include "sim/io/fault_plan.hpp"
#include "sim/io/file_sink.hpp"
#include "sim/metric_names.hpp"
#include "sim/sim_context.hpp"
#include "trace/fault_injector.hpp"

namespace tracemod::scenarios {
namespace {

std::string tmp(const std::string& name) {
  return testing::TempDir() + "tracemod_supervisor_" + name;
}

void expect_identical(const BenchmarkOutcome& a, const BenchmarkOutcome& b) {
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.timed_out, b.timed_out);
  EXPECT_EQ(a.wall_stuck, b.wall_stuck);
  EXPECT_EQ(std::memcmp(&a.elapsed_s, &b.elapsed_s, sizeof(double)), 0);
  EXPECT_EQ(a.andrew.total_s, b.andrew.total_s);
  EXPECT_EQ(a.andrew.rpc_calls, b.andrew.rpc_calls);
}

void expect_identical_sweeps(const SweepResult& a, const SweepResult& b) {
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    ASSERT_EQ(a.cells[i].live.size(), b.cells[i].live.size());
    ASSERT_EQ(a.cells[i].modulated.size(), b.cells[i].modulated.size());
    for (std::size_t t = 0; t < a.cells[i].live.size(); ++t) {
      expect_identical(a.cells[i].live[t], b.cells[i].live[t]);
      expect_identical(a.cells[i].modulated[t], b.cells[i].modulated[t]);
    }
    EXPECT_EQ(a.cells[i].errors, b.cells[i].errors);
    EXPECT_EQ(a.cells[i].trials_retried, b.cells[i].trials_retried);
  }
  ASSERT_EQ(a.ethernet.size(), b.ethernet.size());
  for (std::size_t k = 0; k < a.ethernet.size(); ++k) {
    ASSERT_EQ(a.ethernet[k].size(), b.ethernet[k].size());
    for (std::size_t t = 0; t < a.ethernet[k].size(); ++t) {
      expect_identical(a.ethernet[k][t], b.ethernet[k][t]);
    }
  }
  EXPECT_EQ(a.supervision.errors, b.supervision.errors);
  EXPECT_EQ(a.supervision.trials_failed, b.supervision.trials_failed);
  EXPECT_EQ(a.supervision.trials_retried, b.supervision.trials_retried);
  EXPECT_EQ(a.supervision.trials_timed_out, b.supervision.trials_timed_out);
}

ExperimentConfig supervised_config(int trials = 2) {
  ExperimentConfig cfg;
  cfg.trials = trials;
  cfg.compensation_vb = measure_compensation_vb();
  cfg.supervision.enabled = true;
  return cfg;
}

InjectedTrialFault poison_live_trial0() {
  InjectedTrialFault f;
  f.scenario = "wean";
  f.benchmark = "web";
  f.phase = "live";
  f.trial = 0;
  return f;
}

TEST(SupervisorGuard, PoisonedTrialIsIsolatedFromItsSiblings) {
  const std::vector<Scenario> sc = {wean()};
  const std::vector<BenchmarkKind> kinds = {BenchmarkKind::kWeb};

  const auto clean =
      run_supervised_sweep(nullptr, sc, kinds, supervised_config());

  auto cfg = supervised_config();
  cfg.supervision.inject.push_back(poison_live_trial0());
  const auto poisoned = run_supervised_sweep(nullptr, sc, kinds, cfg);

  // Exactly one structured error, with full identity: taxonomy, derived
  // seed of the failing attempt, and matrix position.
  ASSERT_EQ(poisoned.supervision.errors.size(), 1u);
  const TrialError& e = poisoned.supervision.errors.front();
  EXPECT_EQ(e.kind, TrialErrorKind::kException);
  EXPECT_EQ(e.message, "injected trial fault");
  EXPECT_EQ(e.seed, cfg.base_seed);  // live phase, trial 0
  EXPECT_EQ(e.scenario, "Wean");
  EXPECT_EQ(e.benchmark, "web");
  EXPECT_EQ(e.phase, "live");
  EXPECT_EQ(e.trial, 0);
  EXPECT_EQ(e.attempts, 1);
  EXPECT_EQ(poisoned.supervision.trials_failed, 1u);
  EXPECT_TRUE(poisoned.supervision.degraded());

  // The poisoned slot is a marked partial result, never a fake clean one.
  EXPECT_FALSE(poisoned.cells[0].live[0].completed);
  // Every sibling world is bit-identical to the clean run: N-1 live
  // trials, all modulated trials, and the Ethernet baseline.
  expect_identical(poisoned.cells[0].live[1], clean.cells[0].live[1]);
  for (std::size_t t = 0; t < 2; ++t) {
    expect_identical(poisoned.cells[0].modulated[t],
                     clean.cells[0].modulated[t]);
    expect_identical(poisoned.ethernet[0][t], clean.ethernet[0][t]);
  }
}

TEST(SupervisorGuard, SerialAndParallelAgreeOnResultsAndErrors) {
  const std::vector<Scenario> sc = {wean()};
  const std::vector<BenchmarkKind> kinds = {BenchmarkKind::kWeb};
  auto cfg = supervised_config();
  cfg.supervision.inject.push_back(poison_live_trial0());

  const auto serial = run_supervised_sweep(nullptr, sc, kinds, cfg);
  ParallelRunner runner(4);
  const auto parallel = runner.sweep(sc, kinds, cfg);  // delegates when enabled

  ASSERT_EQ(parallel.supervision.errors.size(), 1u);
  expect_identical_sweeps(serial, parallel);
}

TEST(SupervisorGuard, SupervisionWithoutFaultsMatchesUnsupervisedRun) {
  const std::vector<Scenario> sc = {wean()};
  const std::vector<BenchmarkKind> kinds = {BenchmarkKind::kWeb};

  auto unsupervised = supervised_config();
  unsupervised.supervision.enabled = false;
  ParallelRunner runner(1);
  const auto seed_behaviour = runner.sweep(sc, kinds, unsupervised);

  const auto supervised =
      run_supervised_sweep(nullptr, sc, kinds, supervised_config());

  EXPECT_TRUE(supervised.supervision.errors.empty());
  expect_identical_sweeps(seed_behaviour, supervised);
}

TEST(SupervisorGuard, RetryWithIdenticalSeedRecoversFlakyTrial) {
  const std::vector<Scenario> sc = {wean()};
  const std::vector<BenchmarkKind> kinds = {BenchmarkKind::kWeb};

  const auto clean =
      run_supervised_sweep(nullptr, sc, kinds, supervised_config());

  auto cfg = supervised_config();
  cfg.supervision.max_retries = 1;
  auto fault = poison_live_trial0();
  fault.fail_attempts = 1;  // flaky: fails once, then succeeds
  cfg.supervision.inject.push_back(fault);
  const auto recovered = run_supervised_sweep(nullptr, sc, kinds, cfg);

  // The retry consumed one attempt and recovered; the rerun used the
  // identical derived seed, so outcomes are bit-identical to a run that
  // never failed.
  EXPECT_TRUE(recovered.supervision.errors.empty());
  EXPECT_EQ(recovered.supervision.trials_failed, 0u);
  EXPECT_EQ(recovered.supervision.trials_retried, 1u);
  for (std::size_t t = 0; t < 2; ++t) {
    expect_identical(recovered.cells[0].live[t], clean.cells[0].live[t]);
    expect_identical(recovered.cells[0].modulated[t],
                     clean.cells[0].modulated[t]);
  }
}

TEST(SupervisorGuard, RetryExhaustionRecordsEveryAttempt) {
  const std::vector<Scenario> sc = {wean()};
  const std::vector<BenchmarkKind> kinds = {BenchmarkKind::kWeb};
  auto cfg = supervised_config();
  cfg.supervision.max_retries = 1;
  cfg.supervision.inject.push_back(poison_live_trial0());  // always fails

  const auto result = run_supervised_sweep(nullptr, sc, kinds, cfg);
  ASSERT_EQ(result.supervision.errors.size(), 1u);
  EXPECT_EQ(result.supervision.errors.front().attempts, 2);
  EXPECT_EQ(result.supervision.trials_failed, 1u);
  EXPECT_EQ(result.supervision.trials_retried, 1u);
}

TEST(SupervisorGuard, ExportedMetricsMatchTheReport) {
  SupervisionReport report;
  report.trials_failed = 3;
  report.trials_retried = 5;
  report.trials_timed_out = 2;
  sim::MetricsRegistry metrics;
  export_supervision_metrics(report, metrics);
  EXPECT_EQ(metrics.value(sim::metric::kSweepTrialsFailed), 3u);
  EXPECT_EQ(metrics.value(sim::metric::kSweepTrialsRetried), 5u);
  EXPECT_EQ(metrics.value(sim::metric::kSweepTrialsTimedOut), 2u);
}

// --- watchdogs --------------------------------------------------------------

TEST(Watchdog, CompletedAndDrainedStatusesAreDistinguished) {
  sim::EventLoop loop;
  bool done = false;
  EXPECT_EQ(run_event_loop_until(loop, done, sim::seconds(10), {}),
            RunStatus::kDrained);
  loop.schedule(sim::milliseconds(1), [&] { done = true; });
  EXPECT_EQ(run_event_loop_until(loop, done, sim::seconds(10), {}),
            RunStatus::kCompleted);
}

TEST(Watchdog, VirtualBudgetBoundsANeverTerminatingWorld) {
  sim::EventLoop loop;
  bool done = false;
  // A world that keeps ticking forever but never finishes its benchmark.
  std::function<void()> tick = [&] {
    loop.schedule(sim::milliseconds(1), tick);
  };
  loop.schedule(sim::milliseconds(1), tick);
  EXPECT_EQ(run_event_loop_until(loop, done, sim::seconds(1), {}),
            RunStatus::kVirtualDeadline);
  EXPECT_GE(sim::to_seconds(loop.now()), 1.0);
}

TEST(Watchdog, WallClockDetectorAbandonsAZeroDelayLivelock) {
  sim::EventLoop loop;
  bool done = false;
  // Virtual time never advances, so no virtual budget can save this world;
  // only the event-loop-progress heartbeat notices the stall.
  std::function<void()> spin = [&] { loop.schedule(sim::Duration{0}, spin); };
  loop.schedule(sim::Duration{0}, spin);
  WatchdogConfig wd;
  wd.wall_budget_s = 0.05;
  wd.wall_check_interval = 64;
  EXPECT_EQ(run_event_loop_until(loop, done, sim::seconds(3600), wd),
            RunStatus::kWallStuck);
}

TEST(SupervisorGuard, VirtualBudgetExpiryIsRecordedAndCounted) {
  const std::vector<Scenario> sc = {wean()};
  const std::vector<BenchmarkKind> kinds = {BenchmarkKind::kWeb};
  auto cfg = supervised_config(/*trials=*/1);
  cfg.supervision.virtual_budget = sim::seconds(1);  // web needs ~180 s

  const auto result = run_supervised_sweep(nullptr, sc, kinds, cfg);

  // Live, modulated, and Ethernet worlds all blow the 1 s budget: each is
  // flagged on the outcome, recorded as a kTimedOut error, and counted.
  EXPECT_TRUE(result.cells[0].live[0].timed_out);
  EXPECT_FALSE(result.cells[0].live[0].completed);
  EXPECT_TRUE(result.cells[0].modulated[0].timed_out);
  EXPECT_TRUE(result.ethernet[0][0].timed_out);
  EXPECT_EQ(result.supervision.trials_timed_out, 3u);
  ASSERT_EQ(result.supervision.errors.size(), 3u);
  for (const TrialError& e : result.supervision.errors) {
    EXPECT_EQ(e.kind, TrialErrorKind::kTimedOut);
  }
}

// --- sweep journal ----------------------------------------------------------

std::vector<JournalCellRecord> sample_records() {
  std::vector<JournalCellRecord> records(3);
  records[0].collect = true;
  records[0].scenario = "Wean";
  records[0].trials_retried = 1;

  records[1].scenario = "Wean";
  records[1].kind = BenchmarkKind::kWeb;
  records[1].live.resize(2);
  records[1].live[0].ok = true;
  records[1].live[0].completed = true;
  records[1].live[0].elapsed_s = 183.53;
  records[1].live[1].timed_out = true;
  records[1].modulated.resize(2);
  records[1].modulated[0].ok = true;
  records[1].modulated[0].completed = true;
  records[1].modulated[0].elapsed_s = 187.49;
  records[1].modulated[0].andrew.rpc_calls = 42;
  TrialError err;
  err.kind = TrialErrorKind::kTimedOut;
  err.message = "virtual-time budget (1.000000 s) expired";
  err.seed = 10'001;
  err.scenario = "Wean";
  err.benchmark = "web";
  err.phase = "live";
  err.trial = 1;
  err.attempts = 2;
  records[1].errors.push_back(err);
  records[1].trials_retried = 2;

  records[2].ethernet = true;
  records[2].kind = BenchmarkKind::kWeb;
  records[2].live.resize(1);
  records[2].live[0].ok = true;
  records[2].live[0].completed = true;
  records[2].live[0].elapsed_s = 139.57;
  return records;
}

std::string write_journal(const std::string& path, std::uint32_t fp,
                          const std::vector<JournalCellRecord>& records) {
  SweepJournalWriter writer;
  EXPECT_TRUE(writer.open(path, fp, /*fresh=*/true));
  for (const auto& r : records) writer.append(r);
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void expect_record_prefix(const std::vector<JournalCellRecord>& got,
                          const std::vector<JournalCellRecord>& want) {
  ASSERT_LE(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    // Byte-level equality via the canonical encoding covers every field.
    EXPECT_EQ(encode_journal_record(got[i]), encode_journal_record(want[i]))
        << "record " << i;
    EXPECT_EQ(got[i].collect, want[i].collect);
    EXPECT_EQ(got[i].ethernet, want[i].ethernet);
  }
}

TEST(SweepJournal, RoundTripPreservesEveryField) {
  const auto records = sample_records();
  const std::string path = tmp("roundtrip.journal");
  write_journal(path, 0xdeadbeef, records);

  const auto read = read_sweep_journal(path, 0xdeadbeef);
  EXPECT_EQ(read.status, JournalStatus::kClean);
  ASSERT_EQ(read.records.size(), records.size());
  expect_record_prefix(read.records, records);
  // Spot-check a decoded error survives with full fidelity.
  ASSERT_EQ(read.records[1].errors.size(), 1u);
  EXPECT_EQ(read.records[1].errors.front(), records[1].errors.front());
}

TEST(SweepJournal, MissingFileAndForeignConfigAreRejected) {
  EXPECT_EQ(read_sweep_journal(tmp("nonexistent.journal"), 1).status,
            JournalStatus::kMissing);

  const std::string path = tmp("mismatch.journal");
  write_journal(path, 1111, sample_records());
  const auto read = read_sweep_journal(path, 2222);
  EXPECT_EQ(read.status, JournalStatus::kMismatch);
  EXPECT_TRUE(read.records.empty());
}

TEST(SweepJournal, TruncationDropsOnlyTheTail) {
  const auto records = sample_records();
  const std::string path = tmp("truncated.journal");
  const std::string bytes = write_journal(path, 7, records);

  // A kill mid-append chops the file anywhere; the reader must keep every
  // intact frame and drop only the partial tail, never error out.
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    trace::FaultInjector injector{sim::Rng(seed)};
    std::string damaged = bytes;
    injector.truncate_bytes(damaged, /*min_keep=*/10);
    std::ofstream(path, std::ios::binary).write(damaged.data(),
                                                static_cast<std::streamsize>(
                                                    damaged.size()));
    const auto read = read_sweep_journal(path, 7);
    EXPECT_TRUE(read.status == JournalStatus::kDroppedTail ||
                read.status == JournalStatus::kClean)
        << to_string(read.status) << " seed " << seed;
    EXPECT_LT(read.records.size(), records.size());
    expect_record_prefix(read.records, records);
  }
}

TEST(SweepJournal, BitFlipsNeverYieldDamagedRecords) {
  const auto records = sample_records();
  const std::string path = tmp("flipped.journal");
  const std::string bytes = write_journal(path, 7, records);

  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    trace::FaultInjector injector{sim::Rng(seed)};
    std::string damaged = bytes;
    injector.flip_bytes(damaged, 1, /*protect_prefix=*/10);
    std::ofstream(path, std::ios::binary).write(damaged.data(),
                                                static_cast<std::streamsize>(
                                                    damaged.size()));
    const auto read = read_sweep_journal(path, 7);
    // A flipped frame is either caught by its CRC (corrupt) or, when the
    // flip lands in a length prefix, read as a partial tail.  Every record
    // that IS returned must be one of the originals, undamaged.
    EXPECT_NE(read.status, JournalStatus::kClean) << "seed " << seed;
    expect_record_prefix(read.records, records);
  }
}

TEST(SweepJournal, FailedAppendIsNeverVisibleAsACommittedCell) {
  namespace fs = std::filesystem;
  const auto records = sample_records();
  // Measure the on-disk size after one and after two records so the
  // ENOSPC budget can be aimed exactly at the second append.
  const std::string probe = tmp("enospc_probe.journal");
  write_journal(probe, 7, {records[0]});
  const std::uint64_t size_one = fs::file_size(probe);
  write_journal(probe, 7, {records[0], records[1]});
  const std::uint64_t size_two = fs::file_size(probe);

  sim::io::FaultPlanConfig cfg;
  cfg.enospc_after_bytes = size_two - 1;  // record 1's append must fail
  sim::io::FaultPlan plan(cfg);

  const std::string path = tmp("enospc.journal");
  SweepJournalWriter writer;
  ASSERT_TRUE(writer.open(path, 7, /*fresh=*/true, &plan));
  writer.append(records[0]);
  EXPECT_FALSE(writer.degraded());
  writer.append(records[1]);  // hits the budget mid-run
  EXPECT_TRUE(writer.degraded());
  EXPECT_FALSE(writer.is_open());
  EXPECT_NE(writer.degraded_reason().find("No space"), std::string::npos)
      << writer.degraded_reason();
  writer.append(records[2]);  // degraded writer: cheap no-op
  writer.close();

  // The failed append was truncated back: a resume sees exactly the
  // acknowledged record, never a phantom cell.
  EXPECT_EQ(fs::file_size(path), size_one);
  const auto read = read_sweep_journal(path, 7);
  EXPECT_EQ(read.status, JournalStatus::kClean);
  ASSERT_EQ(read.records.size(), 1u);
  expect_record_prefix(read.records, records);

  // The degradation is observable in the shared io plane.
  bool noted = false;
  for (const std::string& note : sim::io::degraded_plane_notes()) {
    if (note.find("sweep-journal") != std::string::npos) noted = true;
  }
  EXPECT_TRUE(noted);
}

TEST(SweepJournal, CrashAtEverySyscallYieldsACleanPrefixNeverWrongRecords) {
  // Kill the journal writer at every syscall of its life (open, header
  // write+sync, per-record write+sync, final sync+close).  Whatever lands
  // on disk, the reader must classify it as missing, clean, a dropped
  // tail, or corrupt-with-zero-records -- and every record it does return
  // must be an undamaged prefix of what was appended.  11 ops cover the
  // full no-fault syscall sequence for three records; 12..13 prove the
  // uncrashed run is clean end to end.
  const auto records = sample_records();
  for (std::uint64_t crash_at = 1; crash_at <= 13; ++crash_at) {
    const std::string path =
        tmp("crash_" + std::to_string(crash_at) + ".journal");
    sim::io::FaultPlanConfig cfg;
    cfg.seed = crash_at;
    cfg.crash_at_op = crash_at;
    sim::io::FaultPlan plan(cfg);

    SweepJournalWriter writer;
    if (writer.open(path, 7, /*fresh=*/true, &plan)) {
      for (const auto& r : records) writer.append(r);
      writer.close();
    }

    const auto read = read_sweep_journal(path, 7);
    EXPECT_NE(read.status, JournalStatus::kMismatch) << "op " << crash_at;
    if (read.status == JournalStatus::kCorrupt) {
      // Only a torn header can be corrupt, and it yields no records.
      EXPECT_TRUE(read.records.empty()) << "op " << crash_at;
    } else {
      expect_record_prefix(read.records, records);
    }
    if (crash_at >= 12) {
      EXPECT_EQ(read.status, JournalStatus::kClean) << "op " << crash_at;
      EXPECT_EQ(read.records.size(), records.size());
      EXPECT_FALSE(writer.degraded());
    }
  }
}

TEST(SweepJournal, FingerprintTracksPolicyButNotMatrix) {
  ExperimentConfig a;
  ExperimentConfig b = a;
  EXPECT_EQ(sweep_fingerprint(a), sweep_fingerprint(b));
  b.base_seed += 1;
  EXPECT_NE(sweep_fingerprint(a), sweep_fingerprint(b));
  b = a;
  b.supervision.max_retries = 2;
  EXPECT_NE(sweep_fingerprint(a), sweep_fingerprint(b));
  b = a;
  b.supervision.inject.push_back({});
  EXPECT_NE(sweep_fingerprint(a), sweep_fingerprint(b));
}

// --- sweep JSON -------------------------------------------------------------

/// Pulls `"key": "value"` out of a JSON object substring.
std::string json_str_field(const std::string& obj, const std::string& key) {
  const std::string marker = "\"" + key + "\": \"";
  const std::size_t at = obj.find(marker);
  if (at == std::string::npos) return {};
  const std::size_t start = at + marker.size();
  return obj.substr(start, obj.find('"', start) - start);
}

/// Pulls a numeric `"key": 123` out of a JSON object substring.
long long json_int_field(const std::string& obj, const std::string& key) {
  const std::string marker = "\"" + key + "\": ";
  const std::size_t at = obj.find(marker);
  if (at == std::string::npos) return -1;
  return std::stoll(obj.substr(at + marker.size()));
}

TEST(SweepJson, TrialErrorSurvivesTheJsonRoundTrip) {
  // An error record written into tracemod-sweep-v1 must come back with its
  // full identity -- taxonomy kind, matrix position, derived seed, and
  // attempt count -- so postmortem tooling can reproduce the failure.
  TrialError err;
  err.kind = TrialErrorKind::kTimedOut;
  err.message = "virtual-time budget (1.000000 s) expired";
  err.seed = 10'001;
  err.scenario = "Wean";
  err.benchmark = "web";
  err.phase = "live";
  err.trial = 1;
  err.attempts = 2;

  SweepResult result;
  CellResult cell;
  cell.scenario = "Wean";
  cell.kind = BenchmarkKind::kWeb;
  cell.live.resize(2);
  cell.modulated.resize(2);
  cell.errors.push_back(err);
  result.cells.push_back(cell);
  result.ethernet.resize(1);
  result.ethernet[0].resize(2);
  result.supervision.errors.push_back(err);
  result.supervision.trials_failed = 1;

  ExperimentConfig cfg;
  cfg.supervision.enabled = true;
  std::ostringstream out;
  write_sweep_json(out, result, cfg, {BenchmarkKind::kWeb});
  const std::string json = out.str();
  EXPECT_NE(json.find("\"schema\": \"tracemod-sweep-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"tool_version\""), std::string::npos);

  // Parse the first emitted error record back into a TrialError and
  // demand equality with what went in.
  const std::size_t errs = json.find("\"errors\": [");
  ASSERT_NE(errs, std::string::npos);
  const std::size_t open = json.find('{', errs);
  ASSERT_NE(open, std::string::npos);
  const std::string obj = json.substr(open, json.find('}', open) - open + 1);

  TrialError parsed;
  const std::string kind = json_str_field(obj, "kind");
  bool kind_known = false;
  for (TrialErrorKind k : {TrialErrorKind::kException,
                           TrialErrorKind::kTimedOut,
                           TrialErrorKind::kStuck}) {
    if (kind == to_string(k)) {
      parsed.kind = k;
      kind_known = true;
    }
  }
  EXPECT_TRUE(kind_known) << "unparseable kind '" << kind << "'";
  parsed.message = json_str_field(obj, "message");
  parsed.seed = static_cast<std::uint64_t>(json_int_field(obj, "seed"));
  parsed.scenario = json_str_field(obj, "scenario");
  parsed.benchmark = json_str_field(obj, "benchmark");
  parsed.phase = json_str_field(obj, "phase");
  parsed.trial = static_cast<int>(json_int_field(obj, "trial"));
  parsed.attempts = static_cast<int>(json_int_field(obj, "attempts"));
  EXPECT_EQ(parsed, err);
}

TEST(SweepJournal, ResumedSweepReproducesTheUninterruptedRun) {
  const std::vector<Scenario> sc = {wean()};
  const std::vector<BenchmarkKind> kinds = {BenchmarkKind::kWeb,
                                            BenchmarkKind::kFtpRecv};
  const auto cfg = supervised_config(/*trials=*/1);

  const auto uninterrupted = run_supervised_sweep(nullptr, sc, kinds, cfg);

  // First run journals everything, as if it were then killed.
  const std::string path = tmp("resume.journal");
  SweepJournalWriter writer;
  ASSERT_TRUE(writer.open(path, sweep_fingerprint(cfg), /*fresh=*/true));
  SupervisedSweepOptions journal_opts;
  journal_opts.journal = &writer;
  run_supervised_sweep(nullptr, sc, kinds, cfg, journal_opts);

  // Resume from a prefix of the journal: the collect row and the first
  // cell survive the "kill"; the second cell and the Ethernet rows rerun.
  auto read = read_sweep_journal(path, sweep_fingerprint(cfg));
  ASSERT_EQ(read.status, JournalStatus::kClean);
  ASSERT_GE(read.records.size(), 2u);
  read.records.resize(2);
  SupervisedSweepOptions resume_opts;
  resume_opts.resume = &read.records;
  const auto resumed = run_supervised_sweep(nullptr, sc, kinds, cfg,
                                            resume_opts);

  EXPECT_TRUE(resumed.cells[0].resumed);
  EXPECT_FALSE(resumed.cells[1].resumed);
  expect_identical_sweeps(uninterrupted, resumed);
}

}  // namespace
}  // namespace tracemod::scenarios
