#include "scenarios/live_testbed.hpp"

#include <gtest/gtest.h>

#include "scenarios/benchmarks.hpp"

namespace tracemod::scenarios {
namespace {

TEST(LiveTestbed, MobileAssociatesAndPingsServer) {
  LiveTestbed bed(porter(), 1);
  int replies = 0;
  bed.mobile().icmp().set_reply_callback([&](const net::Packet&) { ++replies; });
  for (int i = 0; i < 5; ++i) {
    bed.mobile().icmp().send_echo(bed.server_addr(), 1,
                                  static_cast<std::uint16_t>(i), 64,
                                  bed.loop().now());
    bed.loop().run_for(sim::milliseconds(200));
  }
  EXPECT_GE(replies, 4);  // a frame may fade, but the cell works
}

TEST(LiveTestbed, CollectTraceIsRepeatableForSameSeed) {
  auto collect = [](std::uint64_t seed) {
    LiveTestbed bed(wean(), seed);
    return bed.collect_trace();
  };
  const auto a = collect(5);
  const auto b = collect(5);
  const auto c = collect(6);
  EXPECT_EQ(a.records.size(), b.records.size());
  EXPECT_NE(a.records.size(), c.records.size());
}

TEST(LiveTestbed, ChatterboxInterferersGenerateTraffic) {
  LiveTestbed quiet(porter(), 3);
  LiveTestbed busy(chatterbox(), 3);
  quiet.loop().run_for(sim::seconds(30));
  busy.loop().run_for(sim::seconds(30));
  // Without any benchmark traffic, the Chatterbox channel still carries
  // plenty of frames; Porter's carries none.
  EXPECT_EQ(quiet.channel().stats().frames_delivered, 0u);
  EXPECT_GT(busy.channel().stats().frames_delivered, 200u);
}

TEST(LiveTestbed, HandoffsHappenOnPorterWalk) {
  LiveTestbed bed(porter(), 7);
  bed.loop().run_for(bed.mobility().duration());
  EXPECT_GE(bed.channel().stats().handoffs, 1u);
}

TEST(LiveTestbed, SignalDropsInsideTheElevator) {
  // Device records from a Wean traversal: good in the hallway (~30-60 s),
  // bad during the ride (~95-125 s).
  LiveTestbed bed(wean(), 9);
  const auto trace = bed.collect_trace();
  double hallway_best = 0, ride_worst = 1e9;
  for (const auto& rec : trace.device_records()) {
    const double at = sim::to_seconds(rec.at);
    if (at > 30 && at < 60) hallway_best = std::max(hallway_best, rec.signal_level);
    if (at > 98 && at < 122) ride_worst = std::min(ride_worst, rec.signal_level);
  }
  EXPECT_GT(hallway_best, 12.0);
  EXPECT_LT(ride_worst, 8.0);
}

TEST(LiveTestbed, BenchmarksRunLiveWithoutModification) {
  LiveTestbed bed(wean(), 11);
  const auto out = run_benchmark(BenchmarkKind::kFtpRecv, bed.mobile(),
                                 bed.server(), bed.server_addr(), bed.loop());
  EXPECT_TRUE(out.ok);
  EXPECT_GT(out.elapsed_s, 30.0);   // far slower than Ethernet's ~19.5 s
  EXPECT_LT(out.elapsed_s, 200.0);
}

}  // namespace
}  // namespace tracemod::scenarios
