#include "scenarios/scenario.hpp"

#include <gtest/gtest.h>

namespace tracemod::scenarios {
namespace {

TEST(Scenarios, FourScenariosInPaperOrder) {
  const auto all = all_scenarios();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].name, "Porter");
  EXPECT_EQ(all[1].name, "Flagstaff");
  EXPECT_EQ(all[2].name, "Wean");
  EXPECT_EQ(all[3].name, "Chatterbox");
}

TEST(Scenarios, CheckpointLabelsMatchThePaper) {
  EXPECT_EQ(porter().path.front().label, "x0");
  EXPECT_EQ(porter().path.back().label, "x6");
  EXPECT_EQ(flagstaff().path.front().label, "y0");
  EXPECT_EQ(flagstaff().path.back().label, "y9");
  EXPECT_EQ(wean().path.front().label, "z0");
  EXPECT_EQ(wean().path.back().label, "z7");
}

TEST(Scenarios, CollectionCoversTheWholePath) {
  for (const auto& s : all_scenarios()) {
    EXPECT_GE(s.collection_duration, s.mobility().duration()) << s.name;
  }
}

TEST(Scenarios, OnlyChatterboxHasInterferers) {
  EXPECT_EQ(porter().interferers, 0);
  EXPECT_EQ(flagstaff().interferers, 0);
  EXPECT_EQ(wean().interferers, 0);
  EXPECT_EQ(chatterbox().interferers, 5);
}

TEST(Scenarios, ChatterboxIsStationary) {
  const auto s = chatterbox();
  const auto m = s.mobility();
  const auto p0 = m.position(sim::kEpoch);
  const auto p1 = m.position(sim::kEpoch + sim::seconds(150));
  EXPECT_EQ(p0, p1);
}

TEST(Scenarios, EveryWavePointCoversSomePath) {
  // Each WavePoint should be the nearest base station for some stretch of
  // the path -- otherwise it is dead weight in the scenario definition.
  for (const auto& s : all_scenarios()) {
    if (s.wavepoint_positions.size() < 2) continue;
    const auto m = s.mobility();
    std::vector<bool> nearest(s.wavepoint_positions.size(), false);
    for (double t = 0; t < sim::to_seconds(m.duration()); t += 1.0) {
      const auto pos = m.position(sim::kEpoch + sim::from_seconds(t));
      std::size_t best = 0;
      for (std::size_t w = 1; w < s.wavepoint_positions.size(); ++w) {
        if (wireless::distance(s.wavepoint_positions[w], pos) <
            wireless::distance(s.wavepoint_positions[best], pos)) {
          best = w;
        }
      }
      nearest[best] = true;
    }
    for (std::size_t w = 0; w < nearest.size(); ++w) {
      EXPECT_TRUE(nearest[w]) << s.name << " wavepoint " << w;
    }
  }
}

TEST(Scenarios, WeanElevatorZoneSitsOnThePath) {
  const auto s = wean();
  ASSERT_GE(s.zones.size(), 2u);
  const auto m = s.mobility();
  bool inside_at_some_point = false;
  for (double t = 0; t < sim::to_seconds(m.duration()); t += 0.5) {
    if (s.zones[1].contains(m.position(sim::kEpoch + sim::from_seconds(t)))) {
      inside_at_some_point = true;
    }
  }
  EXPECT_TRUE(inside_at_some_point);
}

}  // namespace
}  // namespace tracemod::scenarios
