// The status plane's zero-perturbation contract at the pipeline level
// (DESIGN.md section 14): enabling a StatusBoard must not move a single
// virtual-time result.  Campus runs pin this with digest equality, sweep
// trials with bitwise elapsed-time equality, and the published snapshot
// must agree with the driver's own result counters.
#include "sim/status/status.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "scenarios/campus.hpp"
#include "scenarios/supervisor.hpp"

namespace tracemod::scenarios {
namespace {

std::string tmp(const std::string& name) {
  return testing::TempDir() + "tracemod_status_pipeline_" + name;
}

sim::status::StatusBoard::Config board_config(const std::string& name) {
  sim::status::StatusBoard::Config cfg;
  cfg.path = tmp(name);
  cfg.driver = "test";
  cfg.min_publish_interval_s = 0.0;
  return cfg;
}

TEST(StatusPipeline, CampusDigestIsIdenticalWithStatusOn) {
  CampusConfig cfg;
  cfg.hosts = 200;
  cfg.horizon = sim::seconds(5);
  cfg.seed = 1234;
  const CampusResult off = run_campus(cfg);
  ASSERT_TRUE(off.ok);

  sim::status::StatusBoard board;
  ASSERT_TRUE(board.configure(board_config("campus.status")));
  cfg.watchdog.status = &board;
  const CampusResult on = run_campus(cfg);
  ASSERT_TRUE(on.ok);

  // Virtual-time identity: same digest, same event count, same handoffs.
  EXPECT_EQ(off.digest, on.digest);
  EXPECT_EQ(off.events, on.events);
  EXPECT_EQ(off.handoffs, on.handoffs);
  EXPECT_EQ(off.frames_delivered, on.frames_delivered);

  // The board tracked the run: the virtual horizon is the progress axis
  // and the heartbeat flushed the exact final event count.
  const sim::status::StatusSnapshot snap = board.peek();
  EXPECT_EQ(snap.units_label, "sim-seconds");
  EXPECT_EQ(snap.units_total, 5.0);
  EXPECT_EQ(snap.units_done, 5.0);
  EXPECT_EQ(snap.events_dispatched, on.events);
  EXPECT_EQ(snap.sim_seconds, 5.0);

  // And the file on disk is a readable CRC-valid snapshot.
  const auto read = sim::status::read_status_file(board.path());
  ASSERT_EQ(read.status, sim::status::StatusReadStatus::kOk) << read.message;
  EXPECT_GE(read.snapshot.seq, 1u);
}

TEST(StatusPipeline, SupervisedSweepTrialsAreBitIdenticalWithStatusOn) {
  const std::vector<Scenario> sc = {wean()};
  const std::vector<BenchmarkKind> kinds = {BenchmarkKind::kWeb};
  ExperimentConfig cfg;
  cfg.trials = 1;
  cfg.compensation_vb = measure_compensation_vb();
  cfg.supervision.enabled = true;

  const SweepResult off = run_supervised_sweep(nullptr, sc, kinds, cfg);

  sim::status::StatusBoard board;
  ASSERT_TRUE(board.configure(board_config("sweep.status")));
  cfg.status = &board;
  const SweepResult on = run_supervised_sweep(nullptr, sc, kinds, cfg);

  ASSERT_EQ(off.cells.size(), on.cells.size());
  for (std::size_t i = 0; i < off.cells.size(); ++i) {
    ASSERT_EQ(off.cells[i].live.size(), on.cells[i].live.size());
    for (std::size_t t = 0; t < off.cells[i].live.size(); ++t) {
      EXPECT_EQ(std::memcmp(&off.cells[i].live[t].elapsed_s,
                            &on.cells[i].live[t].elapsed_s, sizeof(double)),
                0);
      EXPECT_EQ(std::memcmp(&off.cells[i].modulated[t].elapsed_s,
                            &on.cells[i].modulated[t].elapsed_s,
                            sizeof(double)),
                0);
    }
  }
  for (std::size_t k = 0; k < off.ethernet.size(); ++k) {
    for (std::size_t t = 0; t < off.ethernet[k].size(); ++t) {
      EXPECT_EQ(std::memcmp(&off.ethernet[k][t].elapsed_s,
                            &on.ethernet[k][t].elapsed_s, sizeof(double)),
                0);
    }
  }

  // Progress accounting closed the books: every unit the pre-pass counted
  // was marked done, with no retries or errors on a clean matrix.
  const sim::status::StatusSnapshot snap = board.peek();
  EXPECT_EQ(snap.units_label, "trials");
  EXPECT_GT(snap.units_total, 0.0);
  EXPECT_EQ(snap.units_done, snap.units_total);
  EXPECT_EQ(snap.retries, 0u);
  EXPECT_EQ(snap.errors, 0u);
  EXPECT_GT(snap.events_dispatched, 0u);
}

TEST(StatusPipeline, DegradedSweepCountsItsErrorsOnTheBoard) {
  const std::vector<Scenario> sc = {wean()};
  const std::vector<BenchmarkKind> kinds = {BenchmarkKind::kWeb};
  ExperimentConfig cfg;
  cfg.trials = 2;
  cfg.compensation_vb = measure_compensation_vb();
  cfg.supervision.enabled = true;
  cfg.supervision.max_retries = 1;
  InjectedTrialFault fault;
  fault.scenario = "wean";
  fault.benchmark = "web";
  fault.phase = "live";
  fault.trial = 0;
  cfg.supervision.inject.push_back(fault);  // exhausts its retry

  sim::status::StatusBoard board;
  ASSERT_TRUE(board.configure(board_config("degraded.status")));
  cfg.status = &board;
  const SweepResult result = run_supervised_sweep(nullptr, sc, kinds, cfg);
  ASSERT_TRUE(result.supervision.degraded());

  const sim::status::StatusSnapshot snap = board.peek();
  EXPECT_EQ(snap.errors, result.supervision.trials_failed);
  EXPECT_EQ(snap.retries, result.supervision.trials_retried);
  // A failed trial still counts as a finished unit; the sweep completed.
  EXPECT_EQ(snap.units_done, snap.units_total);
}

}  // namespace
}  // namespace tracemod::scenarios
