// End-to-end observability tests: full runs with telemetry enabled, the
// zero-perturbation contract, serial/parallel export identity, the
// metric-name drift check, and the golden report shape.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "scenarios/parallel_runner.hpp"
#include "sim/metric_names.hpp"
#include "sim/telemetry.hpp"

namespace tracemod::scenarios {
namespace {

sim::TelemetryConfig enabled_telemetry() {
  sim::TelemetryConfig cfg;
  cfg.enabled = true;
  return cfg;
}

BenchmarkOutcome telemetered_ftp_run() {
  return run_modulated_benchmark(
      core::ReplayTrace::wavelan_like(sim::seconds(120)),
      BenchmarkKind::kFtpRecv, 2026, sim::milliseconds(10), 0.0,
      enabled_telemetry());
}

TEST(TelemetryPipeline, ModulatedRunRecordsAllLayers) {
  const BenchmarkOutcome out = telemetered_ftp_run();
  ASSERT_TRUE(out.ok);
  ASSERT_NE(out.telemetry, nullptr);
  const sim::TelemetrySnapshot& snap = *out.telemetry;

  // The flight recorder must have seen the packet lifecycle across at
  // least ip / eth / transport / modulation (the acceptance bar is 4).
  EXPECT_GE(snap.distinct_layers(), 4u);
  EXPECT_GT(snap.events.size(), 1000u);
  EXPECT_EQ(snap.events_dropped, 0u);

  // Spans must come in begin/end pairs somewhere in the stream.
  std::size_t begins = 0, ends = 0;
  for (const auto& e : snap.events) {
    begins += e.phase == sim::TraceEvent::Phase::kBegin;
    ends += e.phase == sim::TraceEvent::Phase::kEnd;
  }
  EXPECT_GT(begins, 0u);
  EXPECT_GT(ends, 0u);

  // The promised channels: end-to-end latency histogram and delay-queue
  // depth series.
  const sim::Histogram* e2e = nullptr;
  const sim::TimeSeries* depth = nullptr;
  for (const auto& [name, h] : snap.histograms) {
    if (name == sim::metric::kE2eLatencyMs) e2e = &h;
  }
  for (const auto& [name, s] : snap.series) {
    if (name == sim::metric::kDelayQueueDepth) depth = &s;
  }
  ASSERT_NE(e2e, nullptr);
  EXPECT_GT(e2e->total(), 100u);
  ASSERT_NE(depth, nullptr);
  EXPECT_FALSE(depth->empty());

  // The profiler saw the run.
  EXPECT_GT(snap.profiler.dispatched, 0u);
  EXPECT_GT(snap.profiler.queue_high_water, 0u);
  EXPECT_FALSE(snap.profiler.by_tag.empty());
}

TEST(TelemetryPipeline, LiveRunRecordsTheAirLayer) {
  ExperimentConfig cfg;
  cfg.telemetry = enabled_telemetry();
  const BenchmarkOutcome out =
      run_live_trial(wean(), BenchmarkKind::kWeb, cfg, 0);
  ASSERT_TRUE(out.ok);
  ASSERT_NE(out.telemetry, nullptr);
  bool has_air = false;
  for (const auto& t : out.telemetry->tracks) has_air |= t.layer == "air";
  EXPECT_TRUE(has_air);
  EXPECT_GE(out.telemetry->distinct_layers(), 4u);
}

TEST(TelemetryPipeline, EveryCounterNameIsDeclaredCentrally) {
  // The drift test: a full live run plus a modulated run touch every
  // subsystem; any counter name in their snapshots that is not listed in
  // metric_names.hpp is a stray string literal.
  ExperimentConfig cfg;
  cfg.telemetry = enabled_telemetry();
  const BenchmarkOutcome live =
      run_live_trial(wean(), BenchmarkKind::kWeb, cfg, 0);
  const BenchmarkOutcome modulated = telemetered_ftp_run();
  ASSERT_NE(live.telemetry, nullptr);
  ASSERT_NE(modulated.telemetry, nullptr);

  auto check = [](const sim::TelemetrySnapshot& snap) {
    for (const auto& [name, value] : snap.counters) {
      bool declared = false;
      for (const char* known : sim::metric::kAllCounterNames) {
        declared |= name == known;
      }
      EXPECT_TRUE(declared) << "counter '" << name
                            << "' is not declared in sim/metric_names.hpp";
    }
    for (const auto& [name, series] : snap.series) {
      bool declared = false;
      for (const char* known : sim::metric::kAllSeriesNames) {
        declared |= name == known;
      }
      EXPECT_TRUE(declared) << "series '" << name
                            << "' is not declared in sim/metric_names.hpp";
    }
    for (const auto& [name, histogram] : snap.histograms) {
      bool declared = false;
      for (const char* known : sim::metric::kAllHistogramNames) {
        declared |= name == known;
      }
      EXPECT_TRUE(declared) << "histogram '" << name
                            << "' is not declared in sim/metric_names.hpp";
    }
  };
  check(*live.telemetry);
  check(*modulated.telemetry);
  // The runs must actually exercise the stack, or the check is vacuous.
  EXPECT_GT(live.telemetry->counters.size(), 3u);
}

TEST(TelemetryPipeline, EnablingTelemetryDoesNotPerturbTheSimulation) {
  // The zero-overhead contract's stronger half: recording never schedules
  // events or draws randomness, so virtual-time results are bit-identical
  // with telemetry on or off.
  const auto trace = core::ReplayTrace::wavelan_like(sim::seconds(120));
  const BenchmarkOutcome off = run_modulated_benchmark(
      trace, BenchmarkKind::kFtpRecv, 2026, sim::milliseconds(10), 0.0);
  const BenchmarkOutcome off_explicit = run_modulated_benchmark(
      trace, BenchmarkKind::kFtpRecv, 2026, sim::milliseconds(10), 0.0,
      sim::TelemetryConfig{});
  const BenchmarkOutcome on = telemetered_ftp_run();
  EXPECT_EQ(off.telemetry, nullptr);
  EXPECT_EQ(off_explicit.telemetry, nullptr);
  EXPECT_DOUBLE_EQ(off.elapsed_s, off_explicit.elapsed_s);
  EXPECT_DOUBLE_EQ(off.elapsed_s, on.elapsed_s);
}

TEST(TelemetryPipeline, SerialAndParallelRunsExportIdentically) {
  ExperimentConfig cfg;
  cfg.trials = 2;
  cfg.telemetry = enabled_telemetry();

  const auto serial = run_live_trials(wean(), BenchmarkKind::kWeb, cfg);
  ParallelRunner runner(4);
  const auto parallel = runner.live_trials(wean(), BenchmarkKind::kWeb, cfg);
  ASSERT_EQ(serial.size(), parallel.size());

  const auto serial_labels = labeled_telemetry(serial, "wean/web");
  const auto parallel_labels = labeled_telemetry(parallel, "wean/web");
  ASSERT_EQ(serial_labels.size(), 2u);
  ASSERT_EQ(parallel_labels.size(), 2u);

  std::ostringstream sm, pm, sj, pj;
  sim::write_metrics_text(sm, serial_labels);
  sim::write_metrics_text(pm, parallel_labels);
  EXPECT_EQ(sm.str(), pm.str());
  sim::write_chrome_trace(sj, serial_labels);
  sim::write_chrome_trace(pj, parallel_labels);
  EXPECT_EQ(sj.str(), pj.str());
}

// Collapses every run of digits and '#' bar characters to a single '#', so
// the golden file pins the report's *shape* (sections, channel names,
// layout) without breaking when deterministic counts shift.
std::string normalize_report(const std::string& report) {
  std::string out;
  bool in_run = false;
  for (const char c : report) {
    const bool run_char = (c >= '0' && c <= '9') || c == '#';
    if (run_char) {
      if (!in_run) out += '#';
      in_run = true;
    } else {
      out += c;
      in_run = false;
    }
  }
  return out;
}

TEST(TelemetryPipeline, ReportShapeMatchesGolden) {
  const BenchmarkOutcome out = telemetered_ftp_run();
  ASSERT_NE(out.telemetry, nullptr);
  std::ostringstream report;
  sim::write_report(report, *out.telemetry, /*include_wall_time=*/false);
  const std::string actual = normalize_report(report.str());

  const std::string path =
      std::string(TRACEMOD_TEST_DIR) + "/golden/telemetry_report.txt";
  std::ifstream golden_in(path);
  ASSERT_TRUE(golden_in) << "missing golden file " << path;
  std::stringstream golden;
  golden << golden_in.rdbuf();
  EXPECT_EQ(actual, golden.str())
      << "normalized report drifted; if intentional, regenerate the golden "
         "file:\n"
      << actual;
}

}  // namespace
}  // namespace tracemod::scenarios
