// The parallel engine's contract: same config, any thread count, identical
// results.  Trials are isolated SimContexts with derived seeds, so the
// parallel matrix must be byte-for-byte the serial matrix.
#include "scenarios/parallel_runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "scenarios/live_testbed.hpp"

namespace tracemod::scenarios {
namespace {

/// Exact equality on purpose: the determinism claim is bit-identity, so
/// EXPECT_NEAR would hide exactly the bugs this test exists to catch.
void expect_identical(const BenchmarkOutcome& a, const BenchmarkOutcome& b) {
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(std::memcmp(&a.elapsed_s, &b.elapsed_s, sizeof(double)), 0);
  EXPECT_EQ(a.andrew.total_s, b.andrew.total_s);
  EXPECT_EQ(a.andrew.scandir_s, b.andrew.scandir_s);
  EXPECT_EQ(a.andrew.rpc_calls, b.andrew.rpc_calls);
  EXPECT_EQ(a.andrew.rpc_retransmissions, b.andrew.rpc_retransmissions);
}

void expect_identical(const core::ReplayTrace& a, const core::ReplayTrace& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& ta = a.tuples()[i];
    const auto& tb = b.tuples()[i];
    EXPECT_EQ(ta.d, tb.d);
    EXPECT_EQ(ta.latency_s, tb.latency_s);
    EXPECT_EQ(ta.per_byte_bottleneck, tb.per_byte_bottleneck);
    EXPECT_EQ(ta.per_byte_residual, tb.per_byte_residual);
    EXPECT_EQ(ta.loss, tb.loss);
  }
}

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.trials = 2;
  cfg.compensation_vb = measure_compensation_vb();
  return cfg;
}

TEST(TaskPool, RunsEveryTaskExactlyOnce) {
  TaskPool pool(8);
  EXPECT_EQ(pool.thread_count(), 8u);
  std::atomic<int> hits{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 200; ++i) tasks.push_back([&] { ++hits; });
  pool.run_all(std::move(tasks));
  EXPECT_EQ(hits.load(), 200);
}

TEST(TaskPool, ReusableAcrossBatches) {
  TaskPool pool(3);
  std::atomic<int> hits{0};
  for (int batch = 0; batch < 5; ++batch) {
    std::vector<std::function<void()>> tasks(10, [&] { ++hits; });
    pool.run_all(std::move(tasks));
  }
  EXPECT_EQ(hits.load(), 50);
}

TEST(TaskPool, FirstExceptionPropagates) {
  TaskPool pool(4);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 16; ++i) {
    tasks.push_back([i] {
      if (i % 4 == 0) throw std::runtime_error("trial failed");
    });
  }
  EXPECT_THROW(pool.run_all(std::move(tasks)), std::runtime_error);
  // The pool survives a throwing batch.
  std::atomic<int> hits{0};
  pool.run_all({[&] { ++hits; }});
  EXPECT_EQ(hits.load(), 1);
}

TEST(TaskPool, SoleExceptionIsRethrownUnchanged) {
  TaskPool pool(4);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([i] {
      if (i == 3) throw std::invalid_argument("only failure");
    });
  }
  // A single failing task's exception must keep its type and message, not
  // get wrapped in a combined error.
  EXPECT_THROW(pool.run_all(std::move(tasks)), std::invalid_argument);
}

TEST(TaskPool, EveryExceptionIsCollectedIntoTheCombinedError) {
  TaskPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 16; ++i) {
    tasks.push_back([i, &ran] {
      ++ran;
      if (i % 4 == 0) throw std::runtime_error("trial failed");
    });
  }
  try {
    pool.run_all(std::move(tasks));
    FAIL() << "run_all swallowed 4 exceptions";
  } catch (const std::runtime_error& e) {
    // Sibling failures are not swallowed after the first: the combined
    // error names the full count.  (Which failure's message is quoted
    // depends on scheduling, so only the count is asserted.)
    EXPECT_NE(std::string(e.what()).find("4 of 16 tasks failed"),
              std::string::npos)
        << e.what();
  }
  // Every task still ran despite the failures.
  EXPECT_EQ(ran.load(), 16);
}

TEST(ParallelRunner, IndexMapLandsResultsInOrder) {
  TaskPool pool(8);
  const auto out = parallel_index_map<std::size_t>(
      pool, 100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelRunner, LiveTrialsMatchSerialBitForBit) {
  const auto cfg = small_config();
  const auto scenario = wean();
  const auto serial = run_live_trials(scenario, BenchmarkKind::kFtpRecv, cfg);

  ParallelRunner runner(8);
  const auto parallel =
      runner.live_trials(scenario, BenchmarkKind::kFtpRecv, cfg);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_identical(serial[i], parallel[i]);
  }
}

TEST(ParallelRunner, ReplayTracesMatchSerialBitForBit) {
  const auto cfg = small_config();
  const auto scenario = porter();
  const auto serial = collect_replay_traces(scenario, cfg);

  ParallelRunner runner(8);
  const auto parallel = runner.replay_traces(scenario, cfg);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_identical(serial[i], parallel[i]);
  }
}

TEST(ParallelRunner, FullExperimentMatchesSerialPipeline) {
  const auto cfg = small_config();
  const auto scenario = wean();

  const auto serial_live =
      run_live_trials(scenario, BenchmarkKind::kWeb, cfg);
  const auto serial_traces = collect_replay_traces(scenario, cfg);
  const auto serial_mod =
      run_modulated_trials(serial_traces, BenchmarkKind::kWeb, cfg);

  ParallelRunner runner(8);
  const auto c = runner.experiment(scenario, BenchmarkKind::kWeb, cfg);

  ASSERT_EQ(c.live.size(), serial_live.size());
  ASSERT_EQ(c.traces.size(), serial_traces.size());
  ASSERT_EQ(c.modulated.size(), serial_mod.size());
  for (std::size_t i = 0; i < serial_live.size(); ++i) {
    expect_identical(serial_live[i], c.live[i]);
    expect_identical(serial_traces[i], c.traces[i]);
    expect_identical(serial_mod[i], c.modulated[i]);
  }
}

TEST(ParallelRunner, EthernetTrialsMatchSerialBitForBit) {
  const auto cfg = small_config();
  const auto serial = run_ethernet_trials(BenchmarkKind::kFtpSend, cfg);
  ParallelRunner runner(8);
  const auto parallel = runner.ethernet_trials(BenchmarkKind::kFtpSend, cfg);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_identical(serial[i], parallel[i]);
  }
}

TEST(ParallelRunner, ConcurrentLiveTestbedsHaveIndependentPacketIds) {
  // Two worlds, one per thread: each must stamp the same dense id
  // sequence it would alone, regardless of interleaving.
  auto drive = [](std::uint64_t seed) {
    LiveTestbed bed(wean(), seed);
    for (int i = 0; i < 25; ++i) {
      bed.mobile().node().send(net::make_udp_packet(
          net::IpAddress{}, bed.server_addr(), 1000, 2000, 256));
      bed.loop().run_for(sim::milliseconds(20));
    }
    return bed.context().packet_ids_issued();
  };

  TaskPool pool(2);
  std::uint64_t issued_a = 0, issued_b = 0;
  pool.run_all({
      [&] { issued_a = drive(1); },
      [&] { issued_b = drive(1); },
  });
  EXPECT_GE(issued_a, 25u);
  // Identical seed, identical world: had the counters been shared, the
  // two runs would have split one id space instead of each owning it.
  EXPECT_EQ(issued_a, issued_b);

  EXPECT_EQ(drive(1), issued_a);
}

}  // namespace
}  // namespace tracemod::scenarios
