// Production-volume robustness at campus scale: a supervised sweep over
// the campus_walk scenario with the campus population as chatterbox
// interferers, audits enabled.  The contract mirrors the streaming
// distiller's: fidelity verdicts are pass or unauditable -- interference
// and damage degrade auditability, they never fabricate a breach -- and
// supervision keeps the sweep deterministic under parallelism.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "audit/auditor.hpp"
#include "scenarios/campus.hpp"
#include "scenarios/supervisor.hpp"

namespace tracemod::scenarios {
namespace {

Scenario campus_with_interferers() {
  Scenario s = campus_walk();
  // A slice of the campus population sharing the medium (the chatterbox
  // role from the Flagstaff tables), over a test-sized traversal.
  s.interferers = 5;
  s.collection_duration = sim::seconds(60);
  return s;
}

ExperimentConfig audited_config() {
  ExperimentConfig cfg;
  cfg.trials = 1;
  cfg.compensation_vb = measure_compensation_vb();
  cfg.supervision.enabled = true;
  cfg.audit.enabled = true;
  return cfg;
}

TEST(CampusAudit, SupervisedSweepVerdictsAreNeverBreach) {
  const std::vector<Scenario> sc = {campus_with_interferers()};
  const std::vector<BenchmarkKind> kinds = {BenchmarkKind::kWeb};
  const SweepResult result =
      run_supervised_sweep(nullptr, sc, kinds, audited_config());

  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_TRUE(result.cells.front().errors.empty());
  // Sweep audits are per scenario (one per collected trace).
  ASSERT_EQ(result.audits.size(), 1u);
  ASSERT_FALSE(result.audits.front().empty());
  for (const audit::FidelityReport& report : result.audits.front()) {
    std::string detail;
    for (const std::string& b : report.breaches) detail += "\n  " + b;
    EXPECT_NE(report.verdict, audit::Verdict::kBreach)
        << "audit " << report.label << " reported a breach under campus "
        << "interference; expected pass or unauditable:" << detail;
  }
}

TEST(CampusAudit, AuditedCampusSweepIsDeterministic) {
  const std::vector<Scenario> sc = {campus_with_interferers()};
  const std::vector<BenchmarkKind> kinds = {BenchmarkKind::kWeb};
  const ExperimentConfig cfg = audited_config();

  const SweepResult a = run_supervised_sweep(nullptr, sc, kinds, cfg);
  const SweepResult b = run_supervised_sweep(nullptr, sc, kinds, cfg);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  ASSERT_EQ(a.audits.size(), b.audits.size());
  ASSERT_EQ(a.audits[0].size(), b.audits[0].size());
  for (std::size_t i = 0; i < a.audits[0].size(); ++i) {
    EXPECT_EQ(a.audits[0][i].verdict, b.audits[0][i].verdict);
    EXPECT_EQ(a.audits[0][i].label, b.audits[0][i].label);
  }
  EXPECT_EQ(a.supervision.trials_failed, b.supervision.trials_failed);
  EXPECT_EQ(a.supervision.trials_timed_out, b.supervision.trials_timed_out);
}

}  // namespace
}  // namespace tracemod::scenarios
