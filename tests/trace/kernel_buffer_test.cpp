#include "trace/kernel_buffer.hpp"

#include <gtest/gtest.h>

namespace tracemod::trace {
namespace {

PacketRecord packet_at(double s) {
  PacketRecord p;
  p.at = sim::kEpoch + sim::from_seconds(s);
  return p;
}

TEST(KernelBuffer, FifoOrder) {
  KernelBuffer buf(10);
  for (int i = 0; i < 5; ++i) {
    PacketRecord p = packet_at(i);
    p.icmp_seq = static_cast<std::uint16_t>(i);
    EXPECT_TRUE(buf.push(p));
  }
  const auto out = buf.drain(10, sim::kEpoch + sim::seconds(9));
  ASSERT_EQ(out.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(std::get<PacketRecord>(out[static_cast<std::size_t>(i)]).icmp_seq, i);
  }
}

TEST(KernelBuffer, DrainRespectsLimit) {
  KernelBuffer buf(10);
  for (int i = 0; i < 8; ++i) buf.push(packet_at(i));
  EXPECT_EQ(buf.drain(3, sim::kEpoch).size(), 3u);
  EXPECT_EQ(buf.size(), 5u);
}

TEST(KernelBuffer, OverrunCountsLossesByType) {
  KernelBuffer buf(2);
  EXPECT_TRUE(buf.push(packet_at(0)));
  EXPECT_TRUE(buf.push(packet_at(1)));
  EXPECT_FALSE(buf.push(packet_at(2)));
  EXPECT_FALSE(buf.push(DeviceRecord{}));
  EXPECT_EQ(buf.pending_lost_packet(), 1u);
  EXPECT_EQ(buf.pending_lost_device(), 1u);
}

TEST(KernelBuffer, DrainPrefixesLossMarkerOnce) {
  KernelBuffer buf(1);
  buf.push(packet_at(0));
  buf.push(packet_at(1));  // lost
  buf.push(packet_at(2));  // lost

  const auto now = sim::kEpoch + sim::seconds(5);
  const auto out = buf.drain(10, now);
  ASSERT_EQ(out.size(), 2u);
  const auto& marker = std::get<LostRecords>(out[0]);
  EXPECT_EQ(marker.lost_packet_records, 2u);
  EXPECT_EQ(marker.at, now);
  EXPECT_TRUE(std::holds_alternative<PacketRecord>(out[1]));

  // Counters reset after reporting.
  buf.push(packet_at(3));
  const auto again = buf.drain(10, now);
  ASSERT_EQ(again.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<PacketRecord>(again[0]));
}

TEST(KernelBuffer, EmptyDrainIsEmpty) {
  KernelBuffer buf(4);
  EXPECT_TRUE(buf.drain(10, sim::kEpoch).empty());
}

}  // namespace
}  // namespace tracemod::trace
