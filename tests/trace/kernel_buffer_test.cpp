#include "trace/kernel_buffer.hpp"

#include <gtest/gtest.h>

namespace tracemod::trace {
namespace {

PacketRecord packet_at(double s) {
  PacketRecord p;
  p.at = sim::kEpoch + sim::from_seconds(s);
  return p;
}

TEST(KernelBuffer, FifoOrder) {
  KernelBuffer buf(10);
  for (int i = 0; i < 5; ++i) {
    PacketRecord p = packet_at(i);
    p.icmp_seq = static_cast<std::uint16_t>(i);
    EXPECT_TRUE(buf.push(p));
  }
  const auto out = buf.drain(10, sim::kEpoch + sim::seconds(9));
  ASSERT_EQ(out.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(std::get<PacketRecord>(out[static_cast<std::size_t>(i)]).icmp_seq, i);
  }
}

TEST(KernelBuffer, DrainRespectsLimit) {
  KernelBuffer buf(10);
  for (int i = 0; i < 8; ++i) buf.push(packet_at(i));
  EXPECT_EQ(buf.drain(3, sim::kEpoch).size(), 3u);
  EXPECT_EQ(buf.size(), 5u);
}

TEST(KernelBuffer, OverrunCountsLossesByType) {
  KernelBuffer buf(2);
  EXPECT_TRUE(buf.push(packet_at(0)));
  EXPECT_TRUE(buf.push(packet_at(1)));
  EXPECT_FALSE(buf.push(packet_at(2)));
  EXPECT_FALSE(buf.push(DeviceRecord{}));
  EXPECT_EQ(buf.pending_lost_packet(), 1u);
  EXPECT_EQ(buf.pending_lost_device(), 1u);
}

TEST(KernelBuffer, DrainPrefixesLossMarkerOnce) {
  KernelBuffer buf(1);
  buf.push(packet_at(0));
  buf.push(packet_at(1));  // lost
  buf.push(packet_at(2));  // lost

  const auto now = sim::kEpoch + sim::seconds(5);
  const auto out = buf.drain(10, now);
  ASSERT_EQ(out.size(), 2u);
  const auto& marker = std::get<LostRecords>(out[0]);
  EXPECT_EQ(marker.lost_packet_records, 2u);
  EXPECT_EQ(marker.at, now);
  EXPECT_TRUE(std::holds_alternative<PacketRecord>(out[1]));

  // Counters reset after reporting.
  buf.push(packet_at(3));
  const auto again = buf.drain(10, now);
  ASSERT_EQ(again.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<PacketRecord>(again[0]));
}

TEST(KernelBuffer, EmptyDrainIsEmpty) {
  KernelBuffer buf(4);
  EXPECT_TRUE(buf.drain(10, sim::kEpoch).empty());
}

TEST(KernelBuffer, ZeroLimitDrainStillEmitsPendingLossMarker) {
  KernelBuffer buf(1);
  buf.push(packet_at(0));
  buf.push(packet_at(1));  // lost
  buf.push(DeviceRecord{});  // lost

  // drain(0): no records wanted, but the loss marker must not be delayed --
  // the overrun happened and the stream has to say so at this drain time.
  const auto now = sim::kEpoch + sim::seconds(3);
  const auto out = buf.drain(0, now);
  ASSERT_EQ(out.size(), 1u);
  const auto& marker = std::get<LostRecords>(out[0]);
  EXPECT_EQ(marker.at, now);
  EXPECT_EQ(marker.lost_packet_records, 1u);
  EXPECT_EQ(marker.lost_device_records, 1u);
  // The queued record is still there, and the counters were consumed.
  EXPECT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf.pending_lost_packet(), 0u);
  EXPECT_EQ(buf.pending_lost_device(), 0u);
}

TEST(KernelBuffer, InterleavedPushDrainNeverLosesLossCounts) {
  KernelBuffer buf(2);
  std::uint64_t pushed_ok = 0, drained = 0, lost_reported = 0;
  // Interleave overruns and partial drains; every push must end up either
  // drained or accounted for by a LostRecords marker.
  const std::size_t kBatches = 50;
  std::uint64_t pushed_total = 0;
  for (std::size_t batch = 0; batch < kBatches; ++batch) {
    for (int i = 0; i < 4; ++i) {  // 4 pushes into capacity 2: overruns
      ++pushed_total;
      if (buf.push(packet_at(static_cast<double>(pushed_total)))) {
        ++pushed_ok;
      }
    }
    // Alternate zero-limit, partial, and draining drains.
    const std::size_t limit = batch % 3;  // 0, 1, 2, 0, ...
    for (const auto& rec :
         buf.drain(limit, sim::kEpoch + sim::seconds(
                              static_cast<std::int64_t>(batch)))) {
      if (const auto* l = std::get_if<LostRecords>(&rec)) {
        lost_reported += l->lost_packet_records + l->lost_device_records;
      } else {
        ++drained;
      }
    }
  }
  // Flush what is still queued and pending.
  for (const auto& rec : buf.drain(1000, sim::kEpoch + sim::seconds(1000))) {
    if (const auto* l = std::get_if<LostRecords>(&rec)) {
      lost_reported += l->lost_packet_records + l->lost_device_records;
    } else {
      ++drained;
    }
  }
  EXPECT_EQ(drained, pushed_ok);
  EXPECT_EQ(drained + lost_reported, pushed_total);
}

TEST(KernelBuffer, SetCapacityPressureCausesOverrunsNotCrashes) {
  KernelBuffer buf(8);
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(buf.push(packet_at(i)));
  buf.set_capacity(2);  // injected pressure: below current occupancy
  EXPECT_FALSE(buf.push(packet_at(6)));
  EXPECT_EQ(buf.pending_lost_packet(), 1u);
  // Queued records survive the shrink; draining below the bound re-enables
  // pushes.
  EXPECT_EQ(buf.drain(10, sim::kEpoch).size(), 7u);  // marker + 6 records
  EXPECT_TRUE(buf.empty());
  EXPECT_TRUE(buf.push(packet_at(7)));
  EXPECT_TRUE(buf.push(packet_at(8)));
  EXPECT_FALSE(buf.push(packet_at(9)));  // new capacity is 2
}

}  // namespace
}  // namespace tracemod::trace
