#include "trace/records.hpp"

#include <gtest/gtest.h>

namespace tracemod::trace {
namespace {

PacketRecord echo(std::uint16_t seq, double at_s, std::uint32_t bytes = 60) {
  PacketRecord r;
  r.at = sim::kEpoch + sim::from_seconds(at_s);
  r.dir = PacketDirection::kOutgoing;
  r.protocol = net::Protocol::kIcmp;
  r.icmp_kind = IcmpKind::kEcho;
  r.icmp_seq = seq;
  r.ip_bytes = bytes;
  return r;
}

PacketRecord reply(std::uint16_t seq, double sent_s, double rtt_s,
                   std::uint32_t bytes = 60) {
  PacketRecord r = echo(seq, sent_s + rtt_s, bytes);
  r.dir = PacketDirection::kIncoming;
  r.icmp_kind = IcmpKind::kEchoReply;
  r.echo_origin = sim::kEpoch + sim::from_seconds(sent_s);
  return r;
}

TEST(Records, RttFromPayloadTimestamp) {
  const PacketRecord r = reply(1, 10.0, 0.005);
  EXPECT_NEAR(sim::to_seconds(r.rtt()), 0.005, 1e-12);
}

TEST(Records, RecordTimeCoversAllVariants) {
  const TraceRecord p = echo(0, 1.0);
  const TraceRecord d = DeviceRecord{sim::kEpoch + sim::seconds(2), 18, 10, 2};
  const TraceRecord l = LostRecords{sim::kEpoch + sim::seconds(3), 4, 1};
  EXPECT_EQ(record_time(p), sim::kEpoch + sim::seconds(1));
  EXPECT_EQ(record_time(d), sim::kEpoch + sim::seconds(2));
  EXPECT_EQ(record_time(l), sim::kEpoch + sim::seconds(3));
}

TEST(Records, QueryHelpersFilterCorrectly) {
  CollectedTrace trace;
  trace.records.emplace_back(echo(0, 0.0));
  trace.records.emplace_back(reply(0, 0.0, 0.004));
  trace.records.emplace_back(DeviceRecord{sim::kEpoch + sim::seconds(1), 18, 10, 2});
  trace.records.emplace_back(echo(1, 1.0));
  trace.records.emplace_back(LostRecords{sim::kEpoch + sim::seconds(2), 3, 0});

  EXPECT_EQ(trace.echoes_sent().size(), 2u);
  EXPECT_EQ(trace.echo_replies().size(), 1u);
  EXPECT_EQ(trace.device_records().size(), 1u);
  EXPECT_EQ(trace.total_lost_records(), 3u);
  EXPECT_EQ(trace.duration(), sim::seconds(2));
}

TEST(Records, EmptyTraceHasZeroDuration) {
  CollectedTrace trace;
  EXPECT_EQ(trace.duration(), sim::Duration{});
  EXPECT_EQ(trace.total_lost_records(), 0u);
}

TEST(Records, OutgoingRepliesNotCountedAsReplies) {
  // The responder's outgoing ECHOREPLY must not look like a received one.
  CollectedTrace trace;
  PacketRecord r = reply(0, 0.0, 0.004);
  r.dir = PacketDirection::kOutgoing;
  trace.records.emplace_back(r);
  EXPECT_TRUE(trace.echo_replies().empty());
}

}  // namespace
}  // namespace tracemod::trace
