// Deterministic fault injection, and the corruption soak: thousands of
// seeded single-mutation corruptions of a golden v2 trace, none of which may
// crash, hang, or blow up allocation in the salvage reader.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>

#include "sim/metric_names.hpp"
#include "sim/sim_context.hpp"
#include "trace/fault_injector.hpp"
#include "trace/kernel_buffer.hpp"
#include "trace/trace_io.hpp"

namespace tracemod::trace {
namespace {

// A golden trace of a few hundred mixed records, deterministic by
// construction.
CollectedTrace golden_trace() {
  CollectedTrace trace;
  for (int i = 0; i < 180; ++i) {
    if (i % 23 == 11) {
      trace.records.emplace_back(LostRecords{
          sim::kEpoch + sim::milliseconds(10 * i),
          static_cast<std::uint32_t>(i % 5), static_cast<std::uint32_t>(i % 2)});
    } else if (i % 7 == 3) {
      trace.records.emplace_back(
          DeviceRecord{sim::kEpoch + sim::milliseconds(10 * i), 18.0 - i * 0.01,
                       10.0 + i * 0.02, 1.5});
    } else {
      PacketRecord p;
      p.at = sim::kEpoch + sim::milliseconds(10 * i);
      p.dir = i % 2 ? PacketDirection::kIncoming : PacketDirection::kOutgoing;
      p.protocol = i % 3 ? net::Protocol::kTcp : net::Protocol::kIcmp;
      p.ip_bytes = 40 + static_cast<std::uint32_t>(i) % 1460;
      p.icmp_seq = static_cast<std::uint16_t>(i);
      trace.records.emplace_back(p);
    }
  }
  return trace;
}

std::string to_bytes(const CollectedTrace& trace) {
  std::ostringstream out;
  write_trace(out, trace);
  return out.str();
}

std::size_t header_size() { return to_bytes(CollectedTrace{}).size(); }

TraceReadResult salvage(const std::string& bytes,
                        sim::MetricsRegistry* metrics = nullptr) {
  std::istringstream in(bytes);
  return read_trace_ex(in, TraceReadOptions{ReadMode::kSalvage, metrics});
}

TEST(FaultInjector, MutationsAreDeterministicPerSeed) {
  const std::string bytes = to_bytes(golden_trace());
  FaultInjector a{sim::Rng(42)};
  FaultInjector b{sim::Rng(42)};
  FaultInjector c{sim::Rng(43)};
  bool any_differs = false;
  for (int i = 0; i < 64; ++i) {
    const std::string ma = a.mutate_once(bytes);
    EXPECT_EQ(ma, b.mutate_once(bytes)) << "iteration " << i;
    any_differs = any_differs || ma != c.mutate_once(bytes);
    EXPECT_NE(ma, bytes);  // exactly one mutation, never a no-op
  }
  EXPECT_TRUE(any_differs);
}

TEST(FaultInjector, FlipBytesHonorsProtectedPrefix) {
  const std::string original(256, '\0');
  FaultInjector inj{sim::Rng(7)};
  for (int round = 0; round < 40; ++round) {
    std::string bytes = original;
    inj.flip_bytes(bytes, 1, 128);
    EXPECT_EQ(bytes.substr(0, 128), original.substr(0, 128));
    std::size_t changed = 0;
    for (std::size_t i = 128; i < bytes.size(); ++i) {
      if (bytes[i] == original[i]) continue;
      ++changed;
      // A flip touches exactly one bit of one byte.
      const unsigned delta = static_cast<unsigned char>(bytes[i]) ^
                             static_cast<unsigned char>(original[i]);
      EXPECT_EQ(delta & (delta - 1), 0u);
    }
    EXPECT_EQ(changed, 1u);
  }
}

TEST(FaultInjector, TruncateRespectsMinKeep) {
  FaultInjector inj{sim::Rng(11)};
  for (int i = 0; i < 100; ++i) {
    std::string bytes(300, 'x');
    inj.truncate_bytes(bytes, 100);
    EXPECT_GE(bytes.size(), 100u);
    EXPECT_LE(bytes.size(), 300u);
  }
}

TEST(FaultInjector, DropAndDuplicateAdjustRecordCounts) {
  CollectedTrace trace = golden_trace();
  const std::size_t original = trace.records.size();
  FaultInjector inj{sim::Rng(3)};
  inj.drop_records(trace, 10);
  EXPECT_EQ(trace.records.size(), original - 10);
  inj.duplicate_records(trace, 4);
  EXPECT_EQ(trace.records.size(), original - 6);
  // Dropping more than exist empties the trace instead of underflowing.
  inj.drop_records(trace, original * 2);
  EXPECT_TRUE(trace.records.empty());
}

TEST(FaultInjector, FlipBytesInRangeStaysInsideTheRange) {
  const std::string original(512, '\0');
  FaultInjector inj{sim::Rng(19)};
  for (int round = 0; round < 40; ++round) {
    std::string bytes = original;
    inj.flip_bytes_in_range(bytes, 3, 100, 200);
    EXPECT_EQ(bytes.substr(0, 100), original.substr(0, 100));
    EXPECT_EQ(bytes.substr(200), original.substr(200));
    std::size_t changed = 0;
    for (std::size_t i = 100; i < 200; ++i) changed += bytes[i] != original[i];
    // Flips may collide on a byte, but at least one must land.
    EXPECT_GE(changed, 1u);
    EXPECT_LE(changed, 3u);
  }
}

TEST(FaultInjector, FlipFileRangeOnlyTouchesTheRange) {
  const std::string path =
      testing::TempDir() + "tracemod_fault_range.bin";
  const std::string original(1024, '\x5a');
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(original.data(), static_cast<std::streamsize>(original.size()));
  }
  FaultInjector inj{sim::Rng(23)};
  const std::size_t applied = inj.flip_file_range(path, 8, 600, 700);
  EXPECT_EQ(applied, 8u);

  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  ASSERT_EQ(bytes.size(), original.size());
  EXPECT_EQ(bytes.substr(0, 600), original.substr(0, 600));
  EXPECT_EQ(bytes.substr(700), original.substr(700));
  EXPECT_NE(bytes.substr(600, 100), original.substr(600, 100));
  std::filesystem::remove(path);
}

TEST(FaultInjector, TruncateFileRespectsMinKeep) {
  const std::string path =
      testing::TempDir() + "tracemod_fault_truncate.bin";
  FaultInjector inj{sim::Rng(29)};
  for (int i = 0; i < 20; ++i) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      const std::string filler(400, 'y');
      out.write(filler.data(), static_cast<std::streamsize>(filler.size()));
    }
    const auto kept = inj.truncate_file(path, 150);
    ASSERT_TRUE(kept.has_value());
    EXPECT_GE(*kept, 150u);
    EXPECT_LT(*kept, 400u);
    EXPECT_EQ(std::filesystem::file_size(path), *kept);
  }
  std::filesystem::remove(path);
  // A missing file reports failure instead of throwing.
  EXPECT_FALSE(inj.truncate_file(path, 0).has_value());
}

TEST(FaultInjector, DaemonStallFollowsConfiguredChance) {
  sim::MetricsRegistry metrics;
  FaultInjector inj{sim::Rng(5), &metrics};

  DaemonFaultConfig never;  // stall_chance 0
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(inj.daemon_stall(never));
  EXPECT_EQ(metrics.value(sim::metric::kDaemonStarvedTicks), 0u);

  DaemonFaultConfig always;
  always.stall_chance = 1.0;
  always.stall = sim::milliseconds(250);
  for (int i = 0; i < 8; ++i) {
    const auto stall = inj.daemon_stall(always);
    ASSERT_TRUE(stall.has_value());
    EXPECT_EQ(*stall, sim::milliseconds(250));
  }
  EXPECT_EQ(metrics.value(sim::metric::kDaemonStarvedTicks), 8u);
}

TEST(FaultInjector, DaemonWakeupScalesRetryDelay) {
  FaultInjector inj{sim::Rng(5)};
  DaemonFaultConfig cfg;
  cfg.wakeup_factor = 3.0;
  EXPECT_EQ(inj.daemon_wakeup(cfg, sim::milliseconds(20)),
            sim::milliseconds(60));
  DaemonFaultConfig unit;
  EXPECT_EQ(inj.daemon_wakeup(unit, sim::milliseconds(20)),
            sim::milliseconds(20));
}

TEST(FaultInjector, KernelBufferPressureDropsAreCountedAndMarked) {
  sim::MetricsRegistry metrics;
  FaultInjector inj{sim::Rng(9), &metrics};
  KernelBuffer buf(16);
  inj.pressure_kernel_buffer(buf, 0.25);
  EXPECT_EQ(buf.capacity(), 4u);

  PacketRecord p;
  p.at = sim::kEpoch;
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(buf.push(p));
  EXPECT_FALSE(buf.push(p));
  EXPECT_FALSE(buf.push(p));
  EXPECT_EQ(metrics.value(sim::metric::kBufferPressureDrops), 2u);

  // The overrun still surfaces as a LostRecords marker downstream.
  const auto out = buf.drain(100, sim::kEpoch + sim::seconds(1));
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(std::get<LostRecords>(out[0]).lost_packet_records, 2u);

  // Pressure can never shrink below one slot.
  inj.pressure_kernel_buffer(buf, 0.0);
  EXPECT_EQ(buf.capacity(), 1u);
}

// ---------------------------------------------------------------------------
// The corruption soak (issue acceptance criterion): 10,000 seeded
// single-byte-flip / truncation mutations of the golden v2 trace.  The
// salvage reader must never crash, hang, or balloon allocation; strict mode
// must either succeed or throw TraceFormatError.  Run under ASan/UBSan via
// -DTRACEMOD_SANITIZE=address.
// ---------------------------------------------------------------------------
TEST(CorruptionSoak, TenThousandMutationsNeverCrashTheReaders) {
  const CollectedTrace trace = golden_trace();
  const std::string bytes = to_bytes(trace);
  const std::size_t count = trace.records.size();
  // A single mutation damages at most one region; salvage output is bounded
  // by the real records plus a handful of synthesized markers.
  const std::size_t size_bound = count + 8;
  // Allocation is bounded by the bytes actually present (a corrupted count
  // cannot inflate the reserve beyond size/min-record, and geometric vector
  // growth at most doubles), never by the count field.
  const std::size_t capacity_bound = bytes.size() / 17 + 2 * size_bound;

  FaultInjector inj{sim::Rng(20260806)};
  std::uint64_t salvage_ok = 0, header_fatal = 0, strict_rejected = 0;
  for (int i = 0; i < 10000; ++i) {
    const std::string mutated = inj.mutate_once(bytes);

    // Strict: success or a clean TraceFormatError, nothing else.
    try {
      std::istringstream in(mutated);
      read_trace(in);
    } catch (const TraceFormatError&) {
      ++strict_rejected;
    }

    // Salvage: only header damage may throw; everything else must decode
    // with bounded output.
    try {
      const auto result = salvage(mutated);
      ++salvage_ok;
      EXPECT_LE(result.trace.records.size(), size_bound) << "iteration " << i;
      EXPECT_LE(result.trace.records.capacity(), capacity_bound)
          << "iteration " << i;
      EXPECT_LE(result.report.records_read, count) << "iteration " << i;
    } catch (const TraceFormatError&) {
      ++header_fatal;  // mutation landed in magic/version/schema
    }
  }
  EXPECT_EQ(salvage_ok + header_fatal, 10000u);
  // The header is a tiny fraction of the stream; the vast majority of
  // mutations must be salvageable.
  EXPECT_GT(salvage_ok, 9000u);
  EXPECT_GT(strict_rejected, 5000u);
}

// Body-only flips (header protected): salvage must recover every record
// outside the damaged frame.
TEST(CorruptionSoak, BodyFlipsLoseAtMostTheDamagedNeighborhood) {
  const CollectedTrace trace = golden_trace();
  const std::string bytes = to_bytes(trace);
  const std::size_t count = trace.records.size();
  const std::size_t header = header_size();

  FaultInjector inj{sim::Rng(1234)};
  for (int i = 0; i < 500; ++i) {
    std::string mutated = bytes;
    inj.flip_bytes(mutated, 1, header);
    const auto result = salvage(mutated);
    // One flipped bit hits at most one frame; a length-field flip costs at
    // most the frame it ruins plus the one a resync scan lands after.
    EXPECT_GE(result.report.records_read, count - 2) << "iteration " << i;
    EXPECT_LE(result.report.records_read, count) << "iteration " << i;
    if (result.report.records_read < count) {
      EXPECT_GE(result.report.lost_markers_synthesized, 1u)
          << "iteration " << i;
    }
  }
}

// Truncations keep every record before the cut.
TEST(CorruptionSoak, TruncationKeepsEveryRecordBeforeTheCut) {
  const CollectedTrace trace = golden_trace();
  const std::string bytes = to_bytes(trace);
  const std::size_t header = header_size();

  FaultInjector inj{sim::Rng(777)};
  for (int i = 0; i < 500; ++i) {
    std::string mutated = bytes;
    inj.truncate_bytes(mutated, header);
    const std::size_t body = mutated.size() - header;
    // Frames are at most 9 + 40 bytes; everything before the last partial
    // frame must decode.
    const std::size_t whole_frames_lower_bound = body / 49;
    const auto result = salvage(mutated);
    EXPECT_GE(result.report.records_read, whole_frames_lower_bound)
        << "iteration " << i;
    if (mutated.size() < bytes.size()) {
      EXPECT_TRUE(result.report.truncated) << "iteration " << i;
    }
  }
}

}  // namespace
}  // namespace tracemod::trace
