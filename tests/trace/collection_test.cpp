// Integration tests: TraceTap + CollectionDaemon + PingWorkload over a real
// (simulated) Ethernet pair, i.e. the paper's collection phase end to end.
#include <gtest/gtest.h>

#include <memory>

#include "net/ethernet.hpp"
#include "trace/ping.hpp"
#include "trace/trace_tap.hpp"
#include "transport/host.hpp"

namespace tracemod::trace {
namespace {

struct CollectionRig {
  sim::SimContext ctx;
  sim::EventLoop& loop{ctx.loop()};
  net::EthernetSegment segment{loop};
  transport::Host mobile{ctx, "mobile", 1};
  transport::Host server{ctx, "server", 2};
  sim::ClockModel clock;
  TraceTap* tap = nullptr;

  explicit CollectionRig(sim::ClockModel::Config clock_cfg = {},
                         TraceTapConfig tap_cfg = {})
      : clock(clock_cfg, sim::Rng(9)) {
    auto md = std::make_unique<net::EthernetDevice>(segment, "m0");
    md->claim_address(net::IpAddress(10, 0, 0, 2));
    mobile.node().add_interface(std::move(md), net::IpAddress(10, 0, 0, 2));
    mobile.node().set_default_route(0);
    auto sd = std::make_unique<net::EthernetDevice>(segment, "s0");
    sd->claim_address(net::IpAddress(10, 0, 0, 1));
    server.node().add_interface(std::move(sd), net::IpAddress(10, 0, 0, 1));
    server.node().set_default_route(0);
    mobile.node().wrap_interface(
        0, [&](std::unique_ptr<net::NetDevice> inner) {
          auto t = std::make_unique<TraceTap>(
              std::move(inner), loop, clock,
              [] { return wireless::SignalInfo{18, 11, 2}; }, tap_cfg);
          tap = t.get();
          return t;
        });
  }
};

TEST(Collection, PingWorkloadShape) {
  CollectionRig rig;
  PingWorkload ping(rig.mobile, net::IpAddress(10, 0, 0, 1), rig.clock);
  ping.start();
  rig.loop.run_until(rig.loop.now() + sim::seconds(10) +
                     sim::milliseconds(500));
  ping.stop();
  // 1 small + 2 large per second: 11 groups started in [0, 10].
  EXPECT_EQ(ping.stats().groups_started, 11u);
  EXPECT_GE(ping.stats().stage1_replies, 10u);
  EXPECT_EQ(ping.stats().echoes_sent, ping.stats().groups_started * 3);
}

TEST(Collection, TapRecordsBothDirectionsWhenOpen) {
  CollectionRig rig;
  CollectionDaemon daemon(rig.loop, *rig.tap);
  PingWorkload ping(rig.mobile, net::IpAddress(10, 0, 0, 1), rig.clock);
  daemon.start();
  ping.start();
  rig.loop.run_until(rig.loop.now() + sim::seconds(5));
  ping.stop();
  daemon.stop();

  const CollectedTrace& trace = daemon.trace();
  const auto sent = trace.echoes_sent();
  const auto replies = trace.echo_replies();
  EXPECT_GE(sent.size(), 13u);  // ~5 groups
  EXPECT_GE(replies.size(), 13u);
  // Sizes: the workload's two stages (plus ICMP + IP headers).
  EXPECT_EQ(sent.front().ip_bytes, 32u + 28u);
  std::uint32_t largest = 0;
  for (const auto& e : sent) largest = std::max(largest, e.ip_bytes);
  EXPECT_EQ(largest, 1024u + 28u);
}

TEST(Collection, DeviceRecordsSampledOncePerSecond) {
  CollectionRig rig;
  CollectionDaemon daemon(rig.loop, *rig.tap);
  daemon.start();
  rig.loop.run_until(rig.loop.now() + sim::seconds(10) + sim::milliseconds(1));
  daemon.stop();
  const auto dev = daemon.trace().device_records();
  ASSERT_GE(dev.size(), 10u);
  EXPECT_LE(dev.size(), 12u);
  EXPECT_DOUBLE_EQ(dev.front().signal_level, 18.0);
}

TEST(Collection, ClosedTapRecordsNothing) {
  CollectionRig rig;
  PingWorkload ping(rig.mobile, net::IpAddress(10, 0, 0, 1), rig.clock);
  ping.start();  // tap never opened
  rig.loop.run_until(rig.loop.now() + sim::seconds(3));
  ping.stop();
  EXPECT_TRUE(rig.tap->read(100).empty());
}

TEST(Collection, RttsUseTheHostClock) {
  // A drifting host clock shows up in recorded RTTs exactly as on real
  // hardware: both timestamps come from the same (skewed) clock, so the
  // RTT error is only the skew *over the round trip* (tiny).
  sim::ClockModel::Config cfg;
  cfg.skew_ppm = 200.0;
  CollectionRig rig(cfg);
  CollectionDaemon daemon(rig.loop, *rig.tap);
  PingWorkload ping(rig.mobile, net::IpAddress(10, 0, 0, 1), rig.clock);
  daemon.start();
  ping.start();
  rig.loop.run_until(rig.loop.now() + sim::seconds(5));
  ping.stop();
  daemon.stop();
  for (const auto& r : daemon.trace().echo_replies()) {
    EXPECT_GT(r.rtt().count(), 0);
    EXPECT_LT(sim::to_seconds(r.rtt()), 0.05);
  }
}

TEST(Collection, BufferOverrunYieldsLossMarkers) {
  TraceTapConfig tap_cfg;
  tap_cfg.buffer_capacity = 4;  // absurdly small kernel buffer
  CollectionRig rig({}, tap_cfg);
  // Slow daemon: drains rarely.
  CollectionDaemon daemon(rig.loop, *rig.tap, sim::seconds(2));
  PingWorkload ping(rig.mobile, net::IpAddress(10, 0, 0, 1), rig.clock);
  daemon.start();
  ping.start();
  rig.loop.run_until(rig.loop.now() + sim::seconds(8));
  ping.stop();
  daemon.stop();
  EXPECT_GT(daemon.trace().total_lost_records(), 0u);
}

TEST(Collection, TapIsTransparentToTraffic) {
  // Tracing must not change what the workload sees: equal reply counts
  // with the tap open or closed.
  auto run = [](bool open) {
    CollectionRig rig;
    CollectionDaemon daemon(rig.loop, *rig.tap);
    PingWorkload ping(rig.mobile, net::IpAddress(10, 0, 0, 1), rig.clock);
    if (open) daemon.start();
    ping.start();
    rig.loop.run_until(rig.loop.now() + sim::seconds(5));
    return ping.stats().stage1_replies + ping.stats().stage2_replies;
  };
  EXPECT_EQ(run(true), run(false));
}

}  // namespace
}  // namespace tracemod::trace
