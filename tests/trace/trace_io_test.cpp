#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

namespace tracemod::trace {
namespace {

CollectedTrace sample_trace() {
  CollectedTrace trace;
  PacketRecord p;
  p.at = sim::kEpoch + sim::milliseconds(123);
  p.dir = PacketDirection::kIncoming;
  p.protocol = net::Protocol::kIcmp;
  p.ip_bytes = 1052;
  p.icmp_kind = IcmpKind::kEchoReply;
  p.icmp_id = 42;
  p.icmp_seq = 7;
  p.echo_origin = sim::kEpoch + sim::milliseconds(100);
  trace.records.emplace_back(p);

  PacketRecord t;
  t.at = sim::kEpoch + sim::milliseconds(200);
  t.protocol = net::Protocol::kTcp;
  t.ip_bytes = 1500;
  t.src_port = 20000;
  t.dst_port = 80;
  t.tcp_seq = 123456789ull;
  t.tcp_flags = 0x3;
  trace.records.emplace_back(t);

  trace.records.emplace_back(
      DeviceRecord{sim::kEpoch + sim::seconds(1), 18.5, 11.25, 2.0});
  trace.records.emplace_back(LostRecords{sim::kEpoch + sim::seconds(2), 9, 2});
  return trace;
}

TEST(TraceIo, RoundTripPreservesEveryField) {
  const CollectedTrace original = sample_trace();
  std::stringstream ss;
  write_trace(ss, original);
  const CollectedTrace loaded = read_trace(ss);

  ASSERT_EQ(loaded.records.size(), original.records.size());

  const auto& p = std::get<PacketRecord>(loaded.records[0]);
  EXPECT_EQ(p.at, sim::kEpoch + sim::milliseconds(123));
  EXPECT_EQ(p.dir, PacketDirection::kIncoming);
  EXPECT_EQ(p.protocol, net::Protocol::kIcmp);
  EXPECT_EQ(p.ip_bytes, 1052u);
  EXPECT_EQ(p.icmp_kind, IcmpKind::kEchoReply);
  EXPECT_EQ(p.icmp_id, 42);
  EXPECT_EQ(p.icmp_seq, 7);
  EXPECT_EQ(p.echo_origin, sim::kEpoch + sim::milliseconds(100));

  const auto& t = std::get<PacketRecord>(loaded.records[1]);
  EXPECT_EQ(t.tcp_seq, 123456789ull);
  EXPECT_EQ(t.tcp_flags, 0x3);
  EXPECT_EQ(t.src_port, 20000);

  const auto& d = std::get<DeviceRecord>(loaded.records[2]);
  EXPECT_DOUBLE_EQ(d.signal_level, 18.5);
  EXPECT_DOUBLE_EQ(d.signal_quality, 11.25);

  const auto& l = std::get<LostRecords>(loaded.records[3]);
  EXPECT_EQ(l.lost_packet_records, 9u);
  EXPECT_EQ(l.lost_device_records, 2u);
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  std::stringstream ss;
  write_trace(ss, CollectedTrace{});
  EXPECT_TRUE(read_trace(ss).records.empty());
}

TEST(TraceIo, RejectsBadMagic) {
  std::stringstream ss;
  ss << "NOPE-this-is-not-a-trace";
  EXPECT_THROW(read_trace(ss), TraceFormatError);
}

TEST(TraceIo, RejectsTruncatedStream) {
  std::stringstream ss;
  write_trace(ss, sample_trace());
  const std::string full = ss.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(read_trace(truncated), TraceFormatError);
}

TEST(TraceIo, RejectsWrongVersion) {
  std::stringstream ss;
  write_trace(ss, CollectedTrace{});
  std::string bytes = ss.str();
  bytes[4] = 99;  // version lives right after the 4-byte magic
  std::stringstream bad(bytes);
  EXPECT_THROW(read_trace(bad), TraceFormatError);
}

TEST(TraceIo, SchemaTableIsSelfDescriptive) {
  std::stringstream ss;
  write_trace(ss, CollectedTrace{});
  const std::string bytes = ss.str();
  // Field names appear verbatim: a reader with no schema knowledge can at
  // least enumerate what the records contain.
  EXPECT_NE(bytes.find("packet"), std::string::npos);
  EXPECT_NE(bytes.find("signal_level"), std::string::npos);
  EXPECT_NE(bytes.find("lost_records"), std::string::npos);
}

TEST(TraceIo, FileSaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "tracemod_io_test.trace";
  save_trace(path, sample_trace());
  const CollectedTrace loaded = load_trace(path);
  EXPECT_EQ(loaded.records.size(), 4u);
  std::remove(path.c_str());
}

TEST(TraceIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_trace("/nonexistent/dir/x.trace"), std::runtime_error);
}

}  // namespace
}  // namespace tracemod::trace
