// Trace format v2: checksummed framing, strict/salvage reading, damage
// reports, and resistance to hostile length/count fields.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>

#include "sim/metric_names.hpp"
#include "sim/sim_context.hpp"
#include "trace/crc32c.hpp"
#include "trace/trace_io.hpp"

namespace tracemod::trace {
namespace {

constexpr std::size_t kFrameHeader = 9;   // tag u8 + len u32 + crc u32
constexpr std::size_t kPacketFrame = kFrameHeader + 40;
constexpr std::size_t kDeviceFrame = kFrameHeader + 32;

CollectedTrace sample_trace() {
  CollectedTrace trace;
  PacketRecord p;
  p.at = sim::kEpoch + sim::milliseconds(123);
  p.dir = PacketDirection::kIncoming;
  p.protocol = net::Protocol::kIcmp;
  p.ip_bytes = 1052;
  p.icmp_kind = IcmpKind::kEchoReply;
  p.icmp_id = 42;
  p.icmp_seq = 7;
  p.echo_origin = sim::kEpoch + sim::milliseconds(100);
  trace.records.emplace_back(p);

  PacketRecord t;
  t.at = sim::kEpoch + sim::milliseconds(200);
  t.protocol = net::Protocol::kTcp;
  t.ip_bytes = 1500;
  t.src_port = 20000;
  t.dst_port = 80;
  t.tcp_seq = 123456789ull;
  t.tcp_flags = 0x3;
  trace.records.emplace_back(t);

  trace.records.emplace_back(
      DeviceRecord{sim::kEpoch + sim::seconds(1), 18.5, 11.25, 2.0});
  trace.records.emplace_back(LostRecords{sim::kEpoch + sim::seconds(2), 9, 2});
  return trace;
}

std::string to_bytes(const CollectedTrace& trace,
                     std::uint16_t version = kTraceFormatVersionV2) {
  std::ostringstream out;
  write_trace(out, trace, version);
  return out.str();
}

// Magic + version + schema table + count: identical for every trace.
std::size_t header_size() { return to_bytes(CollectedTrace{}).size(); }

TraceReadResult read_bytes(const std::string& bytes, ReadMode mode,
                           sim::MetricsRegistry* metrics = nullptr) {
  std::istringstream in(bytes);
  return read_trace_ex(in, TraceReadOptions{mode, metrics});
}

std::uint32_t frame_checksum(std::uint8_t tag, const std::string& payload) {
  return crc32c(payload.data(), payload.size(), crc32c(&tag, 1));
}

std::string make_frame(std::uint8_t tag, const std::string& payload) {
  std::string frame;
  frame.push_back(static_cast<char>(tag));
  const auto len = static_cast<std::uint32_t>(payload.size());
  frame.append(reinterpret_cast<const char*>(&len), 4);
  const std::uint32_t crc = frame_checksum(tag, payload);
  frame.append(reinterpret_cast<const char*>(&crc), 4);
  frame += payload;
  return frame;
}

TEST(TraceV2, RoundTripIsCleanAndVersioned) {
  const CollectedTrace original = sample_trace();
  const auto result = read_bytes(to_bytes(original), ReadMode::kStrict);
  EXPECT_EQ(result.report.version, kTraceFormatVersionV2);
  EXPECT_TRUE(result.report.clean());
  EXPECT_EQ(result.report.records_read, 4u);
  ASSERT_EQ(result.trace.records.size(), original.records.size());
  const auto& p = std::get<PacketRecord>(result.trace.records[0]);
  EXPECT_EQ(p.ip_bytes, 1052u);
  EXPECT_EQ(p.icmp_seq, 7);
  const auto& l = std::get<LostRecords>(result.trace.records[3]);
  EXPECT_EQ(l.lost_packet_records, 9u);
}

TEST(TraceV2, WriterIsBitStable) {
  const CollectedTrace trace = sample_trace();
  EXPECT_EQ(to_bytes(trace), to_bytes(trace));
  EXPECT_EQ(to_bytes(trace, kTraceFormatVersionV1),
            to_bytes(trace, kTraceFormatVersionV1));
  EXPECT_NE(to_bytes(trace), to_bytes(trace, kTraceFormatVersionV1));
}

TEST(TraceV2, V1WriteReadStillRoundTrips) {
  const CollectedTrace original = sample_trace();
  const auto result =
      read_bytes(to_bytes(original, kTraceFormatVersionV1), ReadMode::kStrict);
  EXPECT_EQ(result.report.version, kTraceFormatVersionV1);
  EXPECT_TRUE(result.report.clean());
  ASSERT_EQ(result.trace.records.size(), 4u);
  EXPECT_EQ(std::get<PacketRecord>(result.trace.records[1]).tcp_seq,
            123456789ull);
}

TEST(TraceV2, V1AndV2DecodeIdentically) {
  const CollectedTrace original = sample_trace();
  const auto v1 =
      read_bytes(to_bytes(original, kTraceFormatVersionV1), ReadMode::kStrict);
  const auto v2 = read_bytes(to_bytes(original), ReadMode::kStrict);
  ASSERT_EQ(v1.trace.records.size(), v2.trace.records.size());
  for (std::size_t i = 0; i < v1.trace.records.size(); ++i) {
    EXPECT_EQ(record_time(v1.trace.records[i]),
              record_time(v2.trace.records[i]));
    EXPECT_EQ(v1.trace.records[i].index(), v2.trace.records[i].index());
  }
}

TEST(TraceV2, Crc32cKnownAnswer) {
  // RFC 3720 (iSCSI) test vector: 32 bytes of zeros.
  unsigned char zeros[32] = {};
  EXPECT_EQ(crc32c(zeros, sizeof(zeros)), 0x8A9136AAu);
  const char* s = "123456789";
  EXPECT_EQ(crc32c(s, 9), 0xE3069283u);
  // Incremental == one-shot.
  EXPECT_EQ(crc32c(s + 4, 5, crc32c(s, 4)), crc32c(s, 9));
}

TEST(TraceV2, StrictErrorsCarryOffsetAndRecordIndex) {
  std::string bytes = to_bytes(sample_trace());
  // Flip a payload byte of the second record.
  const std::size_t target = header_size() + kPacketFrame + kFrameHeader + 3;
  bytes[target] = static_cast<char>(bytes[target] ^ 0x40);
  try {
    read_bytes(bytes, ReadMode::kStrict);
    FAIL() << "expected strict read to throw";
  } catch (const TraceFormatError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("checksum mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find("byte offset " +
                        std::to_string(header_size() + kPacketFrame)),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("(record 1)"), std::string::npos) << what;
  }
}

TEST(TraceV2, V1TruncationErrorCarriesOffset) {
  std::string bytes = to_bytes(sample_trace(), kTraceFormatVersionV1);
  bytes.resize(bytes.size() - 5);
  try {
    read_bytes(bytes, ReadMode::kStrict);
    FAIL() << "expected strict read to throw";
  } catch (const TraceFormatError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("byte offset"), std::string::npos) << what;
    EXPECT_NE(what.find("(record 3)"), std::string::npos) << what;
  }
}

TEST(TraceV2, SalvageSkipsCrcDamageAndMarksIt) {
  std::string bytes = to_bytes(sample_trace());
  // Damage the device record's payload (record index 2).
  const std::size_t target =
      header_size() + 2 * kPacketFrame + kFrameHeader + 1;
  bytes[target] = static_cast<char>(bytes[target] ^ 0x01);

  const auto result = read_bytes(bytes, ReadMode::kSalvage);
  EXPECT_EQ(result.report.records_read, 3u);
  EXPECT_EQ(result.report.records_skipped, 1u);
  EXPECT_EQ(result.report.crc_failures, 1u);
  EXPECT_EQ(result.report.lost_markers_synthesized, 1u);
  EXPECT_FALSE(result.report.truncated);
  // packet, packet, synthesized marker (for the dead device record), lost.
  ASSERT_EQ(result.trace.records.size(), 4u);
  const auto& marker = std::get<LostRecords>(result.trace.records[2]);
  EXPECT_EQ(marker.lost_device_records, 1u);
  EXPECT_EQ(marker.lost_packet_records, 0u);
  // Stamped with the last good record's time, like a buffer overrun.
  EXPECT_EQ(marker.at, sim::kEpoch + sim::milliseconds(200));
  // The genuine lost marker survives behind the damage.
  EXPECT_EQ(std::get<LostRecords>(result.trace.records[3]).lost_packet_records,
            9u);
}

TEST(TraceV2, SalvageSkipsUnknownTagFrames) {
  // Simulate version skew: splice a well-formed frame of an unknown record
  // type between records 0 and 1.
  const std::string bytes = to_bytes(sample_trace());
  const std::size_t split = header_size() + kPacketFrame;
  const std::string spliced = bytes.substr(0, split) +
                              make_frame(77, "from-the-future") +
                              bytes.substr(split);

  EXPECT_THROW(read_bytes(spliced, ReadMode::kStrict), TraceFormatError);
  const auto result = read_bytes(spliced, ReadMode::kSalvage);
  EXPECT_EQ(result.report.unknown_tags, 1u);
  EXPECT_EQ(result.report.records_skipped, 1u);
  EXPECT_EQ(result.report.crc_failures, 0u);
  EXPECT_EQ(result.report.records_read, 4u);  // every real record recovered
  EXPECT_EQ(result.report.records_salvaged, 3u);  // those after the splice
  ASSERT_EQ(result.trace.records.size(), 5u);  // 4 real + 1 marker
}

TEST(TraceV2, SalvageResyncsAfterCorruptLength) {
  std::string bytes = to_bytes(sample_trace());
  // Smash record 1's length field to an absurd value: the reader cannot
  // trust it to skip, so it must byte-scan to record 2's frame.
  const std::size_t len_off = header_size() + kPacketFrame + 1;
  const std::uint32_t evil = 0x7fffffff;
  std::memcpy(bytes.data() + len_off, &evil, sizeof(evil));

  EXPECT_THROW(read_bytes(bytes, ReadMode::kStrict), TraceFormatError);
  const auto result = read_bytes(bytes, ReadMode::kSalvage);
  EXPECT_EQ(result.report.resync_scans, 1u);
  EXPECT_GT(result.report.bytes_scanned, 0u);
  EXPECT_EQ(result.report.records_read, 3u);  // records 0, 2, 3
  EXPECT_EQ(result.report.records_skipped, 1u);
  ASSERT_EQ(result.trace.records.size(), 4u);  // 3 good + 1 marker
  EXPECT_TRUE(std::holds_alternative<DeviceRecord>(result.trace.records[2]));
}

TEST(TraceV2, SalvageReportsTruncatedTail) {
  std::string bytes = to_bytes(sample_trace());
  bytes.resize(bytes.size() - 10);  // cut into the final lost-record frame

  EXPECT_THROW(read_bytes(bytes, ReadMode::kStrict), TraceFormatError);
  const auto result = read_bytes(bytes, ReadMode::kSalvage);
  EXPECT_TRUE(result.report.truncated);
  EXPECT_EQ(result.report.records_read, 3u);
  EXPECT_EQ(result.report.lost_markers_synthesized, 1u);
  ASSERT_EQ(result.trace.records.size(), 4u);
}

TEST(TraceV2, CountBombCannotForceAllocation) {
  // A corrupted (or hostile) record count must not drive reserve(): the
  // reader bounds it by the bytes actually present.
  for (const std::uint16_t version :
       {kTraceFormatVersionV1, kTraceFormatVersionV2}) {
    std::string bytes = to_bytes(CollectedTrace{}, version);
    const std::uint64_t bomb = ~0ull;
    std::memcpy(bytes.data() + bytes.size() - 8, &bomb, sizeof(bomb));

    EXPECT_THROW(read_bytes(bytes, ReadMode::kStrict), TraceFormatError)
        << "v" << version;
    const auto result = read_bytes(bytes, ReadMode::kSalvage);
    EXPECT_EQ(result.report.records_expected, bomb);
    EXPECT_EQ(result.report.records_read, 0u);
    EXPECT_TRUE(result.report.truncated);
    EXPECT_LE(result.trace.records.capacity(), 16u) << "v" << version;
  }
}

TEST(TraceV2, SalvageToleratesDroppedAndDuplicatedFrames) {
  const std::string bytes = to_bytes(sample_trace());
  const std::size_t h = header_size();
  // Drop record 0's frame and duplicate record 2's (count now lies).
  const std::string dev_frame =
      bytes.substr(h + 2 * kPacketFrame, kDeviceFrame);
  const std::string mutated =
      bytes.substr(0, h) + bytes.substr(h + kPacketFrame, kPacketFrame) +
      dev_frame + dev_frame + bytes.substr(h + 2 * kPacketFrame + kDeviceFrame);

  const auto result = read_bytes(mutated, ReadMode::kSalvage);
  // Frames are self-describing: every surviving frame decodes.
  EXPECT_EQ(result.report.records_read, 4u);
  EXPECT_FALSE(result.report.truncated);
  EXPECT_EQ(result.report.crc_failures, 0u);
  ASSERT_EQ(result.trace.records.size(), 4u);
  EXPECT_TRUE(std::holds_alternative<DeviceRecord>(result.trace.records[1]));
  EXPECT_TRUE(std::holds_alternative<DeviceRecord>(result.trace.records[2]));
}

TEST(TraceV2, ExtendedPayloadOfKnownTagIsForwardCompatible) {
  // A future revision may append fields to a known record; the reader
  // decodes the prefix it understands and ignores the rest.
  std::string payload;
  const std::int64_t at_ns = 42'000'000;
  payload.append(reinterpret_cast<const char*>(&at_ns), 8);
  const std::uint32_t lost_p = 3, lost_d = 1;
  payload.append(reinterpret_cast<const char*>(&lost_p), 4);
  payload.append(reinterpret_cast<const char*>(&lost_d), 4);
  payload += "extra-fields-v3";

  std::string bytes = to_bytes(CollectedTrace{});
  const std::uint64_t count = 1;
  std::memcpy(bytes.data() + bytes.size() - 8, &count, sizeof(count));
  bytes += make_frame(3 /* kLost */, payload);

  const auto result = read_bytes(bytes, ReadMode::kStrict);
  EXPECT_TRUE(result.report.clean());
  ASSERT_EQ(result.trace.records.size(), 1u);
  const auto& l = std::get<LostRecords>(result.trace.records[0]);
  EXPECT_EQ(l.lost_packet_records, 3u);
  EXPECT_EQ(l.lost_device_records, 1u);
}

TEST(TraceV2, SalvageBumpsMetricsRegistry) {
  std::string bytes = to_bytes(sample_trace());
  const std::size_t target = header_size() + kFrameHeader + 5;
  bytes[target] = static_cast<char>(bytes[target] ^ 0x10);

  sim::MetricsRegistry metrics;
  const auto result = read_bytes(bytes, ReadMode::kSalvage, &metrics);
  EXPECT_EQ(metrics.value(sim::metric::kCrcFailures), 1u);
  EXPECT_EQ(metrics.value(sim::metric::kRecordsSalvaged),
            result.report.records_salvaged);
  EXPECT_EQ(metrics.value(sim::metric::kResyncScans), 0u);
  EXPECT_GT(result.report.records_salvaged, 0u);
}

}  // namespace
}  // namespace tracemod::trace
