// The tracemod exit-code and flag contract (tools/tracemod_cli.hpp):
// usage errors, I/O errors, salvage, and fidelity breaches each map to a
// distinct code, and every malformed invocation is rejected before any
// side effect.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "scenarios/campus.hpp"
#include "trace/records.hpp"
#include "trace/trace_io.hpp"
#include "tracemod_cli.hpp"

namespace tracemod::cli {
namespace {

std::string tmp(const std::string& name) {
  return testing::TempDir() + "tracemod_cli_" + name;
}

TEST(TracemodCli, ExitCodesArePinnedAndDistinct) {
  // The exit-code contract is external API (CI and scripts match on the
  // numbers; README.md carries the full 0-6 table): never renumber.  5 is
  // the supervised sweep's completed-with-degraded-cells code
  // (tools/sweep.cpp); 6 is reserved by the benchmark build guard and
  // never returned by tracemod itself.
  EXPECT_EQ(kExitOk, 0);
  EXPECT_EQ(kExitUsage, 1);
  EXPECT_EQ(kExitIo, 2);
  EXPECT_EQ(kExitSalvage, 3);
  EXPECT_EQ(kExitAudit, 4);
  EXPECT_EQ(kExitDegraded, 5);
  EXPECT_EQ(kExitNonReleaseBuild, 6);
}

TEST(TracemodCli, NoCommandIsAUsageError) {
  EXPECT_EQ(run({}), kExitUsage);
}

TEST(TracemodCli, UnknownCommandIsAUsageError) {
  EXPECT_EQ(run({"bogus"}), kExitUsage);
  EXPECT_EQ(run({"--help"}), kExitUsage);
}

TEST(TracemodCli, UnknownFlagIsAUsageError) {
  EXPECT_EQ(run({"synth", "wavelan", tmp("x.replay"), "--bogus"}),
            kExitUsage);
  EXPECT_EQ(run({"audit", tmp("x.replay"), "--frobnicate", "2"}),
            kExitUsage);
}

TEST(TracemodCli, MissingFlagValueIsAUsageError) {
  EXPECT_EQ(run({"synth", "wavelan", tmp("x.replay"), "--seconds"}),
            kExitUsage);
}

TEST(TracemodCli, NonNumericFlagValueIsAUsageError) {
  EXPECT_EQ(run({"synth", "wavelan", tmp("x.replay"), "--seconds", "soon"}),
            kExitUsage);
  EXPECT_EQ(run({"audit", tmp("x.replay"), "--tick", "10ms"}), kExitUsage);
}

TEST(TracemodCli, WrongPositionalCountIsAUsageError) {
  EXPECT_EQ(run({"synth", "wavelan"}), kExitUsage);
  EXPECT_EQ(run({"info"}), kExitUsage);
  EXPECT_EQ(run({"info", "a", "b"}), kExitUsage);
  EXPECT_EQ(run({"audit"}), kExitUsage);
}

TEST(TracemodCli, UnknownScenarioOrKindIsAUsageError) {
  EXPECT_EQ(run({"collect", "atlantis", tmp("x.trace")}), kExitUsage);
  EXPECT_EQ(run({"synth", "martian", tmp("x.replay")}), kExitUsage);
}

TEST(TracemodCli, MissingInputIsAnIoError) {
  EXPECT_EQ(run({"info", tmp("nonexistent")}), kExitIo);
  EXPECT_EQ(run({"audit", tmp("nonexistent.replay")}), kExitIo);
  EXPECT_EQ(run({"verify", tmp("nonexistent.trace")}), kExitIo);
}

TEST(TracemodCli, SynthInfoRoundTripSucceeds) {
  const std::string path = tmp("ok.replay");
  EXPECT_EQ(run({"synth", "wavelan", path, "--seconds", "30"}), kExitOk);
  EXPECT_EQ(run({"info", path}), kExitOk);
}

trace::CollectedTrace sample_trace() {
  trace::CollectedTrace t;
  for (int i = 0; i < 40; ++i) {
    trace::PacketRecord p;
    p.at = sim::kEpoch + sim::milliseconds(100 * i);
    p.protocol = net::Protocol::kIcmp;
    p.ip_bytes = 600;
    p.icmp_kind = trace::IcmpKind::kEchoReply;
    p.icmp_seq = static_cast<std::uint16_t>(i);
    p.echo_origin = sim::kEpoch + sim::milliseconds(100 * i - 20);
    t.records.emplace_back(p);
  }
  return t;
}

TEST(TracemodCli, VerifyDistinguishesCleanFromSalvageable) {
  const std::string clean = tmp("clean.trace");
  trace::save_trace(clean, sample_trace());
  EXPECT_EQ(run({"verify", clean}), kExitOk);

  const std::string damaged = tmp("damaged.trace");
  EXPECT_EQ(run({"corrupt", clean, damaged, "--seed", "3", "--flips", "8"}),
            kExitOk);
  EXPECT_EQ(run({"verify", damaged}), kExitSalvage);
}

TEST(TracemodCli, AuditPassesFaithfulAndFlagsPerturbedModulation) {
  const std::string path = tmp("audit.replay");
  ASSERT_EQ(run({"synth", "wavelan", path, "--seconds", "60"}), kExitOk);

  const std::string json = tmp("verdict.json");
  EXPECT_EQ(run({"audit", path, "--baseline-seconds", "10", "--json", json}),
            kExitOk);
  std::ifstream verdict(json);
  ASSERT_TRUE(verdict.good());
  std::string contents((std::istreambuf_iterator<char>(verdict)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("\"verdict\": \"pass\""), std::string::npos);

  // The acceptance drill: a deliberately perturbed modulation config (a
  // doubled tick quantum) must exit with the distinct audit code.
  EXPECT_EQ(run({"audit", path, "--tick", "20", "--baseline-seconds", "10"}),
            kExitAudit);
}

TEST(TracemodCli, PerfRejectsMalformedInvocations) {
  EXPECT_EQ(run({"perf"}), kExitUsage);  // missing output prefix
  EXPECT_EQ(run({"perf", tmp("p"), "--campus", "--pipeline", "porter"}),
            kExitUsage);  // exclusive modes
  EXPECT_EQ(run({"perf", tmp("p"), "--stride", "0"}), kExitUsage);
  EXPECT_EQ(run({"perf", tmp("p"), "--benchmark", "bogus"}), kExitUsage);
  EXPECT_EQ(run({"perf", tmp("p"), "--pipeline", "atlantis"}), kExitUsage);
}

TEST(TracemodCli, PerfWritesTheV1ReportAndSidecars) {
  const std::string prefix = tmp("perfrun");
  ASSERT_EQ(run({"perf", prefix, "--seconds", "30"}), kExitOk);

  std::ifstream json(prefix + ".perf.json");
  ASSERT_TRUE(json.good());
  std::string contents((std::istreambuf_iterator<char>(json)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("\"schema\": \"tracemod-perf-v1\""),
            std::string::npos);
  EXPECT_NE(contents.find("\"workload\": \"benchmark-ftp-recv\""),
            std::string::npos);
  EXPECT_NE(contents.find("\"hotspots\""), std::string::npos);

  std::ifstream folded(prefix + ".folded.txt");
  ASSERT_TRUE(folded.good());
  std::string stacks((std::istreambuf_iterator<char>(folded)),
                     std::istreambuf_iterator<char>());
  EXPECT_NE(stacks.find("event_loop;"), std::string::npos);

  std::ifstream counters(prefix + ".perf-counters.json");
  ASSERT_TRUE(counters.good());
  std::string tracks((std::istreambuf_iterator<char>(counters)),
                     std::istreambuf_iterator<char>());
  EXPECT_NE(tracks.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(tracks.find("perf.heap_live_bytes"), std::string::npos);
}

TEST(TracemodCli, PerfCampusMatchesUnprofiledCampusDigest) {
  // Virtual-time identity at the CLI surface: profiling a campus run must
  // leave its digest exactly where `tracemod campus` puts it.
  const std::string prefix = tmp("perfcampus");
  ASSERT_EQ(run({"perf", prefix, "--campus", "--hosts", "50", "--seconds",
                 "2"}),
            kExitOk);
  std::ifstream json(prefix + ".perf.json");
  ASSERT_TRUE(json.good());
  std::string contents((std::istreambuf_iterator<char>(json)),
                       std::istreambuf_iterator<char>());
  const std::size_t at = contents.find("\"digest\": \"");
  ASSERT_NE(at, std::string::npos);
  const std::string profiled_digest = contents.substr(at + 11, 16);

  scenarios::CampusConfig cfg;
  cfg.hosts = 50;
  cfg.horizon = sim::from_seconds(2);
  cfg.seed = 42;  // cmd_campus and cmd_perf default
  const scenarios::CampusResult plain = scenarios::run_campus(cfg);
  char expect[32];
  std::snprintf(expect, sizeof(expect), "%016llx",
                static_cast<unsigned long long>(plain.digest));
  EXPECT_EQ(profiled_digest, expect);
}

TEST(TracemodCli, VersionCommandSucceedsInBothSpellings) {
  EXPECT_EQ(run({"version"}), kExitOk);
  EXPECT_EQ(run({"--version"}), kExitOk);
  EXPECT_EQ(run({"version", "extra"}), kExitUsage);
}

TEST(TracemodCli, StatusCommandDistinguishesMissingFromDamaged) {
  EXPECT_EQ(run({"status"}), kExitUsage);
  EXPECT_EQ(run({"status", tmp("nonexistent.status")}), kExitIo);

  // A file that is not a TMST snapshot is damage, not absence.
  const std::string garbage = tmp("garbage.status");
  std::ofstream(garbage) << "this is not a status file";
  EXPECT_EQ(run({"status", garbage}), kExitIo);
  EXPECT_EQ(run({"status", garbage, "--json"}), kExitIo);
}

TEST(TracemodCli, CampusStatusLeavesAReadableFinishedSnapshot) {
  const std::string prefix = tmp("campusstatus");
  ASSERT_EQ(run({"campus", "--hosts", "50", "--seconds", "2", "--status",
                 prefix}),
            kExitOk);
  // Both renderings read the snapshot back cleanly.
  EXPECT_EQ(run({"status", prefix + ".status"}), kExitOk);
  EXPECT_EQ(run({"status", prefix + ".status", "--json"}), kExitOk);

  // A truncated snapshot (the torn-write drill) flips to the I/O code.
  std::ifstream in(prefix + ".status", std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 8u);
  const std::string torn = tmp("torn.status");
  std::ofstream(torn, std::ios::binary)
      .write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  EXPECT_EQ(run({"status", torn}), kExitIo);
}

TEST(TracemodCli, DistillStatusRequiresTheStreamingPath) {
  EXPECT_EQ(run({"distill", tmp("in.trace"), tmp("out.replay"), "--status",
                 tmp("s")}),
            kExitUsage);
}

TEST(TracemodCli, CampusStatusOffDigestMatchesStatusOn) {
  // The zero-perturbation contract at the CLI surface: --status must not
  // move the campus digest.
  const std::string plain_json = tmp("campus_plain.json");
  const std::string status_json = tmp("campus_status.json");
  ASSERT_EQ(run({"campus", "--hosts", "50", "--seconds", "2", "--json",
                 plain_json}),
            kExitOk);
  ASSERT_EQ(run({"campus", "--hosts", "50", "--seconds", "2", "--json",
                 status_json, "--status", tmp("campus_digest")}),
            kExitOk);
  auto digest_of = [](const std::string& path) {
    std::ifstream in(path);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    const std::size_t at = contents.find("\"digest\": \"");
    if (at == std::string::npos) return std::string();
    const std::size_t start = at + 11;
    return contents.substr(start, contents.find('"', start) - start);
  };
  const std::string plain = digest_of(plain_json);
  ASSERT_FALSE(plain.empty());
  EXPECT_EQ(plain, digest_of(status_json));
}

TEST(TracemodCli, AuditThresholdFlagsAreHonored) {
  const std::string path = tmp("strict.replay");
  ASSERT_EQ(run({"synth", "wavelan", path, "--seconds", "60"}), kExitOk);
  // An impossible ceiling turns the faithful run into a breach.
  EXPECT_EQ(run({"audit", path, "--baseline-seconds", "10", "--max-latency",
                 "0.0001"}),
            kExitAudit);
}

}  // namespace
}  // namespace tracemod::cli
