#include "wireless/geometry.hpp"

#include <gtest/gtest.h>

namespace tracemod::wireless {
namespace {

TEST(Vec2, ArithmeticAndNorm) {
  const Vec2 a{3, 4};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  const Vec2 b = a + Vec2{1, -1};
  EXPECT_EQ(b, (Vec2{4, 3}));
  EXPECT_EQ(a - a, (Vec2{0, 0}));
  EXPECT_EQ(a * 2.0, (Vec2{6, 8}));
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
}

TEST(Vec2, LerpEndpointsAndMidpoint) {
  const Vec2 a{0, 0}, b{10, 20};
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  EXPECT_EQ(lerp(a, b, 0.5), (Vec2{5, 10}));
}

TEST(Segments, CrossingIntersects) {
  EXPECT_TRUE(segments_intersect({0, -1}, {0, 1}, {-1, 0}, {1, 0}));
  EXPECT_TRUE(segments_intersect({0, 0}, {10, 10}, {0, 10}, {10, 0}));
}

TEST(Segments, DisjointDoesNot) {
  EXPECT_FALSE(segments_intersect({0, 0}, {1, 0}, {0, 1}, {1, 1}));
  EXPECT_FALSE(segments_intersect({0, 0}, {1, 1}, {2, 2}, {3, 3}));
}

TEST(Segments, TouchingEndpointCounts) {
  EXPECT_TRUE(segments_intersect({0, 0}, {1, 1}, {1, 1}, {2, 0}));
}

TEST(Segments, CollinearOverlapCounts) {
  EXPECT_TRUE(segments_intersect({0, 0}, {2, 0}, {1, 0}, {3, 0}));
}

TEST(Walls, LossAccumulatesPerCrossing) {
  const std::vector<Wall> walls = {
      Wall{{5, -10}, {5, 10}, 6.0},
      Wall{{7, -10}, {7, 10}, 4.0},
  };
  // Path crossing both walls.
  EXPECT_DOUBLE_EQ(wall_loss_db(walls, {0, 0}, {10, 0}), 10.0);
  // Path crossing only the first.
  EXPECT_DOUBLE_EQ(wall_loss_db(walls, {0, 0}, {6, 0}), 6.0);
  // Path crossing neither.
  EXPECT_DOUBLE_EQ(wall_loss_db(walls, {0, 0}, {4, 0}), 0.0);
  // Path parallel to the walls.
  EXPECT_DOUBLE_EQ(wall_loss_db(walls, {0, -5}, {0, 5}), 0.0);
}

TEST(Zones, LossWhenEitherEndpointInside) {
  const std::vector<Zone> zones = {Zone{{0, 0}, 2.0, 20.0}};
  EXPECT_DOUBLE_EQ(zone_loss_db(zones, {0, 0}, {100, 0}), 20.0);
  EXPECT_DOUBLE_EQ(zone_loss_db(zones, {100, 0}, {1, 1}), 20.0);
  EXPECT_DOUBLE_EQ(zone_loss_db(zones, {50, 0}, {100, 0}), 0.0);
}

TEST(Zones, ContainsIsInclusiveAtRadius) {
  const Zone z{{0, 0}, 2.0, 10.0};
  EXPECT_TRUE(z.contains({2, 0}));
  EXPECT_FALSE(z.contains({2.001, 0}));
}

}  // namespace
}  // namespace tracemod::wireless
