#include "wireless/mobility.hpp"

#include <gtest/gtest.h>

namespace tracemod::wireless {
namespace {

MobilityModel simple_path() {
  // 10 m at 2 m/s, pause 3 s, then 20 m at 2 m/s.
  return MobilityModel({
      MobilityModel::Waypoint{"a", {0, 0}, 1.0, {}},
      MobilityModel::Waypoint{"b", {10, 0}, 2.0, sim::seconds(3)},
      MobilityModel::Waypoint{"c", {10, 20}, 2.0, {}},
  });
}

TEST(Mobility, DurationSumsTravelAndPauses) {
  const auto m = simple_path();
  EXPECT_NEAR(sim::to_seconds(m.duration()), 5.0 + 3.0 + 10.0, 1e-9);
}

TEST(Mobility, PositionInterpolatesAlongLegs) {
  const auto m = simple_path();
  EXPECT_EQ(m.position(sim::kEpoch), (Vec2{0, 0}));
  // Halfway through the first leg (t = 2.5 s of 5 s).
  const Vec2 mid = m.position(sim::kEpoch + sim::milliseconds(2500));
  EXPECT_NEAR(mid.x, 5.0, 1e-9);
  EXPECT_NEAR(mid.y, 0.0, 1e-9);
}

TEST(Mobility, PausesHoldPosition) {
  const auto m = simple_path();
  // During the pause at b (t in [5, 8]).
  for (double t : {5.1, 6.5, 7.9}) {
    const Vec2 p = m.position(sim::kEpoch + sim::from_seconds(t));
    EXPECT_NEAR(p.x, 10.0, 1e-9);
    EXPECT_NEAR(p.y, 0.0, 1e-9);
  }
}

TEST(Mobility, ClampsOutsideTheSchedule) {
  const auto m = simple_path();
  EXPECT_EQ(m.position(sim::kEpoch - sim::seconds(5)), (Vec2{0, 0}));
  EXPECT_EQ(m.position(sim::kEpoch + sim::seconds(100)), (Vec2{10, 20}));
}

TEST(Mobility, CheckpointsCarryLabelsAndArrivalTimes) {
  const auto m = simple_path();
  const auto& cps = m.checkpoints();
  ASSERT_EQ(cps.size(), 3u);
  EXPECT_EQ(cps[0].label, "a");
  EXPECT_EQ(cps[1].label, "b");
  EXPECT_NEAR(sim::to_seconds(cps[1].at), 5.0, 1e-9);
  // c's arrival includes b's pause.
  EXPECT_NEAR(sim::to_seconds(cps[2].at), 5.0 + 3.0 + 10.0, 1e-9);
}

TEST(Mobility, InitialPauseDelaysDeparture) {
  MobilityModel m({
      MobilityModel::Waypoint{"a", {0, 0}, 1.0, sim::seconds(10)},
      MobilityModel::Waypoint{"b", {10, 0}, 1.0, {}},
  });
  EXPECT_EQ(m.position(sim::kEpoch + sim::seconds(9)), (Vec2{0, 0}));
  const Vec2 p = m.position(sim::kEpoch + sim::seconds(15));
  EXPECT_NEAR(p.x, 5.0, 1e-9);
}

TEST(Mobility, StationaryModelNeverMoves) {
  const auto m = MobilityModel::stationary({3, 4}, sim::seconds(60), "s0");
  EXPECT_EQ(m.position(sim::kEpoch + sim::seconds(30)), (Vec2{3, 4}));
  EXPECT_EQ(m.duration(), sim::seconds(60));
  EXPECT_EQ(m.checkpoints()[0].label, "s0");
}

TEST(Mobility, ContinuityEverywhere) {
  // Position must never jump: sample densely, bound the step size.
  const auto m = simple_path();
  Vec2 prev = m.position(sim::kEpoch);
  for (int i = 1; i <= 1800; ++i) {
    const Vec2 p = m.position(sim::kEpoch + sim::milliseconds(10 * i));
    EXPECT_LT(distance(prev, p), 0.05);  // 2 m/s * 10 ms = 0.02 m
    prev = p;
  }
}

RandomWaypointConfig golden_cfg() {
  RandomWaypointConfig cfg;
  cfg.area_min = {0, 0};
  cfg.area_max = {300, 200};
  cfg.speed_min_mps = 0.8;
  cfg.speed_max_mps = 1.8;
  cfg.pause_min = sim::seconds(1);
  cfg.pause_max = sim::seconds(5);
  cfg.horizon = sim::seconds(120);
  cfg.label_prefix = "g";
  return cfg;
}

TEST(RandomWaypoint, PositionGoldensUnderFixedSeed) {
  // Pinned against the fixed draw order (x, y, speed, pause).  Any change
  // to the generator's rng consumption shows up here before it silently
  // perturbs a campus run.
  sim::Rng rng(12345);
  const MobilityModel m = random_waypoint(golden_cfg(), rng);
  EXPECT_NEAR(sim::to_seconds(m.duration()), 284.40905045100004, 1e-9);
  const struct {
    double t, x, y;
  } golden[] = {
      {0.0, 223.1424489469768, 26.009106925566904},
      {10.0, 219.27869382706442, 27.583707420377603},
      {30.0, 204.26408785957742, 33.702626775269039},
      {60.0, 181.74217890834692, 42.881005807606186},
      {90.0, 159.22026995711639, 52.059384839943334},
      {120.0, 136.69836100588589, 61.237763872280489},
  };
  for (const auto& g : golden) {
    const Vec2 p = m.position(sim::kEpoch + sim::from_seconds(g.t));
    EXPECT_NEAR(p.x, g.x, 1e-9) << "t=" << g.t;
    EXPECT_NEAR(p.y, g.y, 1e-9) << "t=" << g.t;
  }
}

TEST(RandomWaypoint, StaysInsideTheArea) {
  sim::Rng rng(7);
  RandomWaypointConfig cfg = golden_cfg();
  cfg.horizon = sim::seconds(3600);
  const MobilityModel m = random_waypoint(cfg, rng);
  for (int i = 0; i <= 720; ++i) {
    const Vec2 p = m.position(sim::kEpoch + sim::seconds(5 * i));
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 300.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 200.0);
  }
}

TEST(RandomWaypoint, ZeroHorizonDegeneratesToStationary) {
  // With no horizon to fill, the generator emits the initial waypoint
  // only -- the path must behave exactly like MobilityModel::stationary
  // at the drawn point.
  sim::Rng rng(42);
  RandomWaypointConfig cfg = golden_cfg();
  cfg.horizon = {};
  const MobilityModel m = random_waypoint(cfg, rng);
  ASSERT_EQ(m.checkpoints().size(), 1u);
  const Vec2 home = m.checkpoints()[0].pos;
  const MobilityModel still =
      MobilityModel::stationary(home, m.duration(), "x");
  for (double t : {0.0, 1.0, 100.0, 10000.0}) {
    const sim::TimePoint at = sim::kEpoch + sim::from_seconds(t);
    EXPECT_EQ(m.position(at), still.position(at)) << "t=" << t;
    EXPECT_EQ(m.position(at), home);
  }
  EXPECT_EQ(m.duration(), still.duration());
}

TEST(RandomWaypoint, SameSeedSamePathDifferentSeedDifferentPath) {
  sim::Rng a(5), b(5), c(6);
  const MobilityModel ma = random_waypoint(golden_cfg(), a);
  const MobilityModel mb = random_waypoint(golden_cfg(), b);
  const MobilityModel mc = random_waypoint(golden_cfg(), c);
  const sim::TimePoint at = sim::kEpoch + sim::seconds(47);
  EXPECT_EQ(ma.position(at), mb.position(at));
  EXPECT_NE(ma.position(at), mc.position(at));
}

TEST(GroupMobility, MembersTrackTheLeaderAtRigidOffsets) {
  // Golden walk for a 4-member group (leader + center member + 3-ring)
  // under a fixed seed: every member is the leader plus its offset at
  // every instant.
  sim::Rng rng(999);
  RandomWaypointConfig cfg = golden_cfg();
  cfg.horizon = sim::seconds(60);
  GroupMobility grp(random_waypoint(cfg, rng));
  EXPECT_EQ(grp.add_member({0, 0}), 0u);
  grp.add_ring(3, 2.5);
  ASSERT_EQ(grp.members(), 4u);

  const struct {
    double t;
    std::size_t k;
    double x, y;
  } golden[] = {
      {0.0, 0, 25.755252857758528, 79.621263577183086},
      {0.0, 1, 28.255252857758528, 79.621263577183086},
      {0.0, 2, 24.505252857758528, 81.786327086644178},
      {0.0, 3, 24.505252857758528, 77.456200067721994},
      {20.0, 0, 41.830690158181454, 64.427051145345573},
      {20.0, 1, 44.330690158181454, 64.427051145345573},
      {20.0, 2, 40.580690158181454, 66.592114654806664},
      {20.0, 3, 40.580690158181454, 62.261987635884473},
      {45.0, 0, 66.438198015844563, 41.168480020962704},
      {45.0, 1, 68.938198015844563, 41.168480020962704},
      {45.0, 2, 65.188198015844563, 43.333543530423803},
      {45.0, 3, 65.188198015844563, 39.003416511501605},
  };
  for (const auto& g : golden) {
    const Vec2 p = grp.position(g.k, sim::kEpoch + sim::from_seconds(g.t));
    EXPECT_NEAR(p.x, g.x, 1e-9) << "t=" << g.t << " k=" << g.k;
    EXPECT_NEAR(p.y, g.y, 1e-9) << "t=" << g.t << " k=" << g.k;
  }

  // Rigid formation: pairwise spacing is time-invariant.
  const sim::TimePoint t0 = sim::kEpoch;
  const sim::TimePoint t1 = sim::kEpoch + sim::seconds(33);
  for (std::size_t k = 1; k < grp.members(); ++k) {
    EXPECT_NEAR(distance(grp.position(0, t0), grp.position(k, t0)),
                distance(grp.position(0, t1), grp.position(k, t1)), 1e-12);
  }
}

TEST(TraceReplay, HitsRecordedSamplesExactly) {
  const MobilityModel m = MobilityModel::trace_replay(
      {
          {sim::kEpoch + sim::seconds(2), {10, 20}},
          {sim::kEpoch + sim::seconds(6), {30, 20}},
          {sim::kEpoch + sim::seconds(7), {30, 25}},
      },
      "t");
  // Recorded samples reproduce verbatim.
  EXPECT_EQ(m.position(sim::kEpoch + sim::seconds(2)), (Vec2{10, 20}));
  EXPECT_EQ(m.position(sim::kEpoch + sim::seconds(6)), (Vec2{30, 20}));
  EXPECT_EQ(m.position(sim::kEpoch + sim::seconds(7)), (Vec2{30, 25}));
  // Anchored at the epoch before the first sample.
  EXPECT_EQ(m.position(sim::kEpoch), (Vec2{10, 20}));
  // Linear between samples, clamped after the last.
  const Vec2 mid = m.position(sim::kEpoch + sim::seconds(4));
  EXPECT_NEAR(mid.x, 20.0, 1e-9);
  EXPECT_NEAR(mid.y, 20.0, 1e-9);
  EXPECT_EQ(m.position(sim::kEpoch + sim::seconds(60)), (Vec2{30, 25}));
  EXPECT_EQ(m.duration(), sim::seconds(7));
  ASSERT_EQ(m.checkpoints().size(), 3u);
  EXPECT_EQ(m.checkpoints()[0].label, "t0");
  EXPECT_EQ(m.checkpoints()[2].label, "t2");
}

}  // namespace
}  // namespace tracemod::wireless
