#include "wireless/mobility.hpp"

#include <gtest/gtest.h>

namespace tracemod::wireless {
namespace {

MobilityModel simple_path() {
  // 10 m at 2 m/s, pause 3 s, then 20 m at 2 m/s.
  return MobilityModel({
      MobilityModel::Waypoint{"a", {0, 0}, 1.0, {}},
      MobilityModel::Waypoint{"b", {10, 0}, 2.0, sim::seconds(3)},
      MobilityModel::Waypoint{"c", {10, 20}, 2.0, {}},
  });
}

TEST(Mobility, DurationSumsTravelAndPauses) {
  const auto m = simple_path();
  EXPECT_NEAR(sim::to_seconds(m.duration()), 5.0 + 3.0 + 10.0, 1e-9);
}

TEST(Mobility, PositionInterpolatesAlongLegs) {
  const auto m = simple_path();
  EXPECT_EQ(m.position(sim::kEpoch), (Vec2{0, 0}));
  // Halfway through the first leg (t = 2.5 s of 5 s).
  const Vec2 mid = m.position(sim::kEpoch + sim::milliseconds(2500));
  EXPECT_NEAR(mid.x, 5.0, 1e-9);
  EXPECT_NEAR(mid.y, 0.0, 1e-9);
}

TEST(Mobility, PausesHoldPosition) {
  const auto m = simple_path();
  // During the pause at b (t in [5, 8]).
  for (double t : {5.1, 6.5, 7.9}) {
    const Vec2 p = m.position(sim::kEpoch + sim::from_seconds(t));
    EXPECT_NEAR(p.x, 10.0, 1e-9);
    EXPECT_NEAR(p.y, 0.0, 1e-9);
  }
}

TEST(Mobility, ClampsOutsideTheSchedule) {
  const auto m = simple_path();
  EXPECT_EQ(m.position(sim::kEpoch - sim::seconds(5)), (Vec2{0, 0}));
  EXPECT_EQ(m.position(sim::kEpoch + sim::seconds(100)), (Vec2{10, 20}));
}

TEST(Mobility, CheckpointsCarryLabelsAndArrivalTimes) {
  const auto m = simple_path();
  const auto& cps = m.checkpoints();
  ASSERT_EQ(cps.size(), 3u);
  EXPECT_EQ(cps[0].label, "a");
  EXPECT_EQ(cps[1].label, "b");
  EXPECT_NEAR(sim::to_seconds(cps[1].at), 5.0, 1e-9);
  // c's arrival includes b's pause.
  EXPECT_NEAR(sim::to_seconds(cps[2].at), 5.0 + 3.0 + 10.0, 1e-9);
}

TEST(Mobility, InitialPauseDelaysDeparture) {
  MobilityModel m({
      MobilityModel::Waypoint{"a", {0, 0}, 1.0, sim::seconds(10)},
      MobilityModel::Waypoint{"b", {10, 0}, 1.0, {}},
  });
  EXPECT_EQ(m.position(sim::kEpoch + sim::seconds(9)), (Vec2{0, 0}));
  const Vec2 p = m.position(sim::kEpoch + sim::seconds(15));
  EXPECT_NEAR(p.x, 5.0, 1e-9);
}

TEST(Mobility, StationaryModelNeverMoves) {
  const auto m = MobilityModel::stationary({3, 4}, sim::seconds(60), "s0");
  EXPECT_EQ(m.position(sim::kEpoch + sim::seconds(30)), (Vec2{3, 4}));
  EXPECT_EQ(m.duration(), sim::seconds(60));
  EXPECT_EQ(m.checkpoints()[0].label, "s0");
}

TEST(Mobility, ContinuityEverywhere) {
  // Position must never jump: sample densely, bound the step size.
  const auto m = simple_path();
  Vec2 prev = m.position(sim::kEpoch);
  for (int i = 1; i <= 1800; ++i) {
    const Vec2 p = m.position(sim::kEpoch + sim::milliseconds(10 * i));
    EXPECT_LT(distance(prev, p), 0.05);  // 2 m/s * 10 ms = 0.02 m
    prev = p;
  }
}

}  // namespace
}  // namespace tracemod::wireless
