#include "wireless/cell_index.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace tracemod::wireless {
namespace {

std::vector<std::uint32_t> candidates(const CellIndex& idx, Vec2 p,
                                      double radius) {
  std::vector<std::uint32_t> out;
  idx.for_each_candidate(p, radius, [&](std::uint32_t id) { out.push_back(id); });
  return out;
}

TEST(CellIndex, FlatModeVisitsEverythingInRegistrationOrder) {
  CellIndex idx(0.0);
  EXPECT_FALSE(idx.sharded());
  idx.insert(7, {1000.0, 1000.0});
  idx.insert(3, {-500.0, 2.0});
  idx.insert(9, {0.0, 0.0});
  // Radius is irrelevant in flat mode: the whole plane is one cell.
  EXPECT_EQ(candidates(idx, {0, 0}, 1.0),
            (std::vector<std::uint32_t>{7, 3, 9}));
  EXPECT_EQ(idx.occupied_cells(), 1u);
}

TEST(CellIndex, FlatModeCoversTheSingleCell) {
  CellIndex idx(0.0);
  std::vector<CellIndex::CellKey> cells;
  idx.covered_cells({123.0, -456.0}, 130.0, &cells);
  EXPECT_EQ(cells, (std::vector<CellIndex::CellKey>{0}));
}

TEST(CellIndex, ShardedQueryIsARangeSuperset) {
  CellIndex idx(100.0);
  EXPECT_TRUE(idx.sharded());
  idx.insert(0, {50.0, 50.0});     // cell (0,0)
  idx.insert(1, {250.0, 50.0});    // cell (2,0) -- two cells away
  idx.insert(2, {950.0, 950.0});   // far corner
  idx.insert(3, {-50.0, 50.0});    // cell (-1,0), across the origin

  const auto near = candidates(idx, {60.0, 60.0}, 80.0);
  // Entries within radius must appear; the far corner must not.
  EXPECT_NE(std::find(near.begin(), near.end(), 0u), near.end());
  EXPECT_NE(std::find(near.begin(), near.end(), 3u), near.end());
  EXPECT_EQ(std::find(near.begin(), near.end(), 2u), near.end());
}

TEST(CellIndex, ShardedQueryOrderIsDeterministicRowMajor) {
  CellIndex idx(100.0);
  idx.insert(10, {150.0, 150.0});  // cell (1,1)
  idx.insert(11, {50.0, 50.0});    // cell (0,0)
  idx.insert(12, {150.0, 50.0});   // cell (1,0)
  idx.insert(13, {60.0, 55.0});    // cell (0,0), after 11
  // Scan rows bottom-up, cells left-to-right, entries in insertion order.
  EXPECT_EQ(candidates(idx, {100.0, 100.0}, 100.0),
            (std::vector<std::uint32_t>{11, 13, 12, 10}));
}

TEST(CellIndex, UpdateMovesEntriesBetweenCells) {
  CellIndex idx(100.0);
  idx.insert(1, {50.0, 50.0});
  idx.insert(2, {55.0, 50.0});
  EXPECT_EQ(idx.occupied_cells(), 1u);

  idx.update(1, {250.0, 250.0});
  EXPECT_EQ(idx.occupied_cells(), 2u);
  const auto old_cell = candidates(idx, {50.0, 50.0}, 10.0);
  EXPECT_EQ(old_cell, (std::vector<std::uint32_t>{2}));
  const auto new_cell = candidates(idx, {250.0, 250.0}, 10.0);
  EXPECT_EQ(new_cell, (std::vector<std::uint32_t>{1}));

  // No-op move: same cell, order preserved.
  idx.update(2, {60.0, 60.0});
  EXPECT_EQ(candidates(idx, {50.0, 50.0}, 10.0),
            (std::vector<std::uint32_t>{2}));
  EXPECT_EQ(idx.size(), 2u);
}

TEST(CellIndex, CoveredCellsSpanTheDiscBoundingBox) {
  CellIndex idx(100.0);
  std::vector<CellIndex::CellKey> cells;
  // Disc centered mid-cell with radius one cell: 3x3 block.
  idx.covered_cells({150.0, 150.0}, 100.0, &cells);
  EXPECT_EQ(cells.size(), 9u);
  cells.clear();
  // Small disc away from any border: just the home cell.
  idx.covered_cells({150.0, 150.0}, 10.0, &cells);
  EXPECT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0], idx.cell_of({150.0, 150.0}));
}

TEST(CellIndex, AssociationRangeInvertsPathLoss) {
  // d = 10^((tx - ref - floor_rx) / (10 n)); with tx 18 dBm, ref 40 dB,
  // n = 3, floor -90 dBm: 10^(68/30).
  const double d = association_range_m(18.0, 40.0, 3.0, -90.0);
  EXPECT_NEAR(d, std::pow(10.0, 68.0 / 30.0), 1e-9);
  // At the computed distance the link budget exactly meets the floor.
  const double rx = 18.0 - (40.0 + 10.0 * 3.0 * std::log10(d));
  EXPECT_NEAR(rx, -90.0, 1e-9);
  // The 1 m reference clamp.
  EXPECT_EQ(association_range_m(0.0, 80.0, 3.0, -10.0), 1.0);
}

}  // namespace
}  // namespace tracemod::wireless
