#include "wireless/channel.hpp"

#include <gtest/gtest.h>

#include "net/ethernet.hpp"
#include "net/node.hpp"
#include "sim/stats.hpp"
#include "wireless/wavelan_device.hpp"
#include "wireless/wavepoint.hpp"

namespace tracemod::wireless {
namespace {

net::Packet udp_packet(net::IpAddress src, net::IpAddress dst,
                       std::uint32_t size) {
  // Hand-stamped ids: these packets bypass a Node (and thus a SimContext),
  // so uniqueness within the test binary is all that matters.
  static std::uint64_t next_id = 1;
  net::Packet p = net::make_udp_packet(src, dst, 1, 2, size);
  p.id = next_id++;
  return p;
}

/// One mobile, one WavePoint bridging to an Ethernet with a wired sink.
struct Cell {
  sim::EventLoop loop;
  net::EthernetSegment backbone{loop};
  WirelessChannel channel;
  WavePoint wp;
  net::EthernetDevice wired_sink{backbone, "sink"};
  net::IpAddress mobile_addr{10, 0, 0, 2};
  net::IpAddress server_addr{10, 0, 0, 1};
  WaveLanDevice radio;
  Vec2 mobile_pos{10, 0};

  explicit Cell(ChannelConfig cfg = {}, SignalConfig sig = {})
      : channel(loop, SignalModel(sig, {}, {}, sim::Rng(2)), cfg, sim::Rng(3)),
        wp(channel, backbone, {0, 0}, "wp0"),
        radio(channel, mobile_addr, [this] { return mobile_pos; }, "wl0") {
    wired_sink.claim_address(server_addr);
    channel.start();
    loop.run_for(sim::milliseconds(1));  // let association settle
  }
};

TEST(Channel, MobileAssociatesWithWavePoint) {
  Cell cell;
  EXPECT_EQ(cell.channel.associated(&cell.radio), &cell.wp);
  EXPECT_TRUE(cell.radio.associated());
}

TEST(Channel, UplinkFrameBridgesToEthernet) {
  Cell cell;
  int got = 0;
  cell.wired_sink.set_receive_callback([&](net::Packet p) {
    ++got;
    EXPECT_EQ(p.dst, cell.server_addr);
  });
  cell.radio.transmit(udp_packet(cell.mobile_addr, cell.server_addr, 256));
  cell.loop.run_for(sim::seconds(1));
  EXPECT_EQ(got, 1);
  EXPECT_GE(cell.channel.stats().frames_delivered, 1u);
}

TEST(Channel, DownlinkReachesTheMobile) {
  Cell cell;
  int got = 0;
  cell.radio.set_receive_callback([&](net::Packet) { ++got; });
  // A wired frame for the mobile: the WavePoint claims its address.
  cell.wired_sink.transmit(udp_packet(cell.server_addr, cell.mobile_addr, 256));
  cell.loop.run_for(sim::seconds(1));
  EXPECT_EQ(got, 1);
}

TEST(Channel, SerializationDelayMatchesRate) {
  Cell cell;
  sim::TimePoint arrival{};
  cell.wired_sink.set_receive_callback(
      [&](net::Packet) { arrival = cell.loop.now(); });
  net::Packet p = udp_packet(cell.mobile_addr, cell.server_addr, 1000);
  const std::uint32_t wire = p.wire_size();
  const sim::TimePoint t0 = cell.loop.now();
  cell.radio.transmit(std::move(p));
  cell.loop.run_for(sim::seconds(1));
  ASSERT_NE(arrival, sim::TimePoint{});
  // At close range the rate is the full effective rate; delay must be at
  // least preamble + serialization and below that plus max backoff + eth.
  const auto& cfg = cell.channel.config();
  const double min_s = sim::to_seconds(cfg.preamble) +
                       wire * 8.0 / cfg.effective_rate_bps;
  const double elapsed = sim::to_seconds(arrival - t0);
  EXPECT_GE(elapsed, min_s);
  EXPECT_LT(elapsed, min_s + 0.05);
}

TEST(Channel, UnassociatedFramesAreDropped) {
  // Mobile 10 km away: below the association floor.
  Cell cell;
  cell.mobile_pos = {10000, 0};
  cell.loop.run_for(sim::seconds(1));  // association poll notices
  cell.radio.transmit(udp_packet(cell.mobile_addr, cell.server_addr, 100));
  cell.loop.run_for(sim::seconds(1));
  EXPECT_GE(cell.channel.stats().frames_dropped_unassociated, 1u);
}

TEST(Channel, SignalInfoTracksDistance) {
  Cell cell;
  const SignalInfo near = cell.channel.signal_info(&cell.radio);
  cell.mobile_pos = {60, 0};
  const SignalInfo far = cell.channel.signal_info(&cell.radio);
  EXPECT_GT(near.level, far.level);
}

TEST(Channel, RateFallsWithSnr) {
  Cell cell;
  EXPECT_GT(cell.channel.rate_bps(25.0), cell.channel.rate_bps(8.0));
  EXPECT_GE(cell.channel.rate_bps(-10.0),
            cell.channel.config().effective_rate_bps *
                cell.channel.config().min_rate_factor - 1.0);
}

TEST(Channel, FrameErrorProbabilityShape) {
  Cell cell;
  // Monotone in SNR.
  EXPECT_GT(cell.channel.frame_error_prob(4.0, 1000),
            cell.channel.frame_error_prob(12.0, 1000));
  // Monotone in size.
  EXPECT_GT(cell.channel.frame_error_prob(8.0, 1500),
            cell.channel.frame_error_prob(8.0, 60));
  // Extremes.
  EXPECT_LT(cell.channel.frame_error_prob(30.0, 1000), 1e-3);
  EXPECT_GT(cell.channel.frame_error_prob(-10.0, 1000), 0.99);
}

TEST(Channel, MarginalLinkLosesFramesButRetries) {
  // Put the mobile at a distance where 1 KB frames are marginal.
  ChannelConfig cfg;
  Cell cell(cfg);
  cell.mobile_pos = {55, 0};  // uplink snr ~ 8-9
  cell.loop.run_for(sim::seconds(1));
  int got = 0;
  cell.wired_sink.set_receive_callback([&](net::Packet) { ++got; });
  for (int i = 0; i < 300; ++i) {
    cell.radio.transmit(udp_packet(cell.mobile_addr, cell.server_addr, 1200));
    cell.loop.run_for(sim::milliseconds(50));
  }
  cell.loop.run_for(sim::seconds(2));
  EXPECT_GT(got, 200);   // most get through
  EXPECT_LT(got, 300);   // but not all
  EXPECT_GT(cell.channel.stats().retry_attempts, 0u);
  EXPECT_GT(cell.channel.stats().frames_dropped_retries, 0u);
}

TEST(Channel, HandoffMovesAddressClaimAndDefersFrames) {
  sim::EventLoop loop;
  net::EthernetSegment backbone(loop);
  ChannelConfig cfg;
  cfg.handoff_outage = sim::milliseconds(100);
  WirelessChannel channel(loop, SignalModel({}, {}, {}, sim::Rng(2)), cfg,
                          sim::Rng(3));
  WavePoint wp_a(channel, backbone, {0, 0}, "wp-a");
  WavePoint wp_b(channel, backbone, {100, 0}, "wp-b");
  net::EthernetDevice sink(backbone, "sink");
  sink.claim_address(net::IpAddress(10, 0, 0, 1));

  Vec2 pos{5, 0};
  WaveLanDevice radio(channel, net::IpAddress(10, 0, 0, 2),
                      [&pos] { return pos; }, "wl0");
  channel.start();
  loop.run_for(sim::seconds(1));
  EXPECT_EQ(channel.associated(&radio), &wp_a);
  EXPECT_TRUE(wp_a.ethernet().accepts(net::IpAddress(10, 0, 0, 2)));

  int got = 0;
  sink.set_receive_callback([&](net::Packet) { ++got; });

  // Walk to wp_b; transmit steadily through the handoff.
  pos = {95, 0};
  for (int i = 0; i < 20; ++i) {
    radio.transmit(udp_packet(net::IpAddress(10, 0, 0, 2),
                              net::IpAddress(10, 0, 0, 1), 200));
    loop.run_for(sim::milliseconds(100));
  }
  loop.run_for(sim::seconds(1));

  EXPECT_EQ(channel.associated(&radio), &wp_b);
  EXPECT_EQ(channel.stats().handoffs, 1u);
  EXPECT_FALSE(wp_a.ethernet().accepts(net::IpAddress(10, 0, 0, 2)));
  EXPECT_TRUE(wp_b.ethernet().accepts(net::IpAddress(10, 0, 0, 2)));
  // Deferred frames were flushed, not lost.
  EXPECT_EQ(got, 20);
}

TEST(Channel, ContentionSerializesTransmitters) {
  // Two mobiles blasting simultaneously: per-frame delay grows vs solo.
  sim::EventLoop loop;
  net::EthernetSegment backbone(loop);
  WirelessChannel channel(loop, SignalModel({}, {}, {}, sim::Rng(2)),
                          ChannelConfig{}, sim::Rng(3));
  WavePoint wp(channel, backbone, {0, 0}, "wp");
  net::EthernetDevice sink(backbone, "sink");
  sink.claim_address(net::IpAddress(10, 0, 0, 1));
  WaveLanDevice r1(channel, net::IpAddress(10, 0, 0, 2),
                   [] { return Vec2{5, 0}; }, "wl1");
  WaveLanDevice r2(channel, net::IpAddress(10, 0, 0, 3),
                   [] { return Vec2{-5, 0}; }, "wl2");
  channel.start();
  loop.run_for(sim::milliseconds(1));

  std::vector<sim::TimePoint> arrivals;
  sink.set_receive_callback(
      [&](net::Packet) { arrivals.push_back(loop.now()); });
  for (int i = 0; i < 10; ++i) {
    r1.transmit(udp_packet(net::IpAddress(10, 0, 0, 2),
                           net::IpAddress(10, 0, 0, 1), 1400));
    r2.transmit(udp_packet(net::IpAddress(10, 0, 0, 3),
                           net::IpAddress(10, 0, 0, 1), 1400));
  }
  loop.run_for(sim::seconds(5));
  ASSERT_GE(arrivals.size(), 18u);  // a few may die to fading
  // All 20 frames of ~1.45 KB at ~1.9 Mb/s: at least 6 ms apiece on air.
  const double span = sim::to_seconds(arrivals.back() - arrivals.front());
  EXPECT_GT(span, 0.10);
}

TEST(Channel, BacklogCapDropsWhenSwamped) {
  ChannelConfig cfg;
  cfg.backlog_cap = sim::milliseconds(50);
  Cell cell(cfg);
  for (int i = 0; i < 100; ++i) {
    cell.radio.transmit(udp_packet(cell.mobile_addr, cell.server_addr, 1400));
  }
  cell.loop.run_for(sim::seconds(5));
  EXPECT_GT(cell.channel.stats().frames_dropped_backlog, 0u);
}

}  // namespace
}  // namespace tracemod::wireless
