// The sharded-medium contracts (DESIGN.md section 11):
//   - distant cells transmit concurrently instead of serializing on one
//     global carrier-sense horizon;
//   - stations within radio range still defer across a cell border;
//   - a single giant cell is bit-identical to the flat (seed) medium;
//   - the two-phase parallel association scan changes nothing.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <utility>
#include <vector>

#include "net/ethernet.hpp"
#include "wireless/channel.hpp"
#include "wireless/wavelan_device.hpp"
#include "wireless/wavepoint.hpp"

namespace tracemod::wireless {
namespace {

net::Packet udp_packet(net::IpAddress src, net::IpAddress dst,
                       std::uint32_t size) {
  static std::uint64_t next_id = 1;
  net::Packet p = net::make_udp_packet(src, dst, 1, 2, size);
  p.id = next_id++;
  return p;
}

/// Two WavePoint islands `gap` metres apart, one mobile parked on each,
/// separate backbones with wired sinks recording delivery times.
struct TwoIslands {
  sim::EventLoop loop;
  WirelessChannel channel;
  net::EthernetSegment backbone_a{loop};
  net::EthernetSegment backbone_b{loop};
  WavePoint wp_a;
  WavePoint wp_b;
  net::EthernetDevice sink_a{backbone_a, "sink-a"};
  net::EthernetDevice sink_b{backbone_b, "sink-b"};
  net::IpAddress addr_a{10, 0, 0, 2};
  net::IpAddress addr_b{10, 0, 0, 3};
  net::IpAddress server_a{10, 0, 1, 1};
  net::IpAddress server_b{10, 0, 1, 2};
  WaveLanDevice radio_a;
  WaveLanDevice radio_b;
  std::vector<double> deliveries_a;
  std::vector<double> deliveries_b;

  TwoIslands(double cell_size, double gap)
      : channel(loop, SignalModel(SignalConfig{}, {}, {}, sim::Rng(2)),
                make_cfg(cell_size), sim::Rng(3)),
        wp_a(channel, backbone_a, {0, 0}, "wp-a"),
        wp_b(channel, backbone_b, {gap, 0}, "wp-b"),
        radio_a(channel, addr_a, [] { return Vec2{5, 0}; }, "wl-a"),
        radio_b(channel, addr_b, [gap] { return Vec2{gap - 5, 0}; }, "wl-b") {
    sink_a.claim_address(server_a);
    sink_a.set_receive_callback([this](net::Packet) {
      deliveries_a.push_back(sim::to_seconds(loop.now() - sim::kEpoch));
    });
    sink_b.claim_address(server_b);
    sink_b.set_receive_callback([this](net::Packet) {
      deliveries_b.push_back(sim::to_seconds(loop.now() - sim::kEpoch));
    });
    channel.start();
    loop.run_for(sim::milliseconds(1));  // associations settle
  }

  static ChannelConfig make_cfg(double cell_size) {
    ChannelConfig cfg;
    cfg.spatial.cell_size = cell_size;
    cfg.spatial.radio_range_m = 130.0;
    return cfg;
  }

  /// Both mobiles transmit one large frame at the same instant.
  void simultaneous_uplinks() {
    loop.schedule(sim::milliseconds(10), [this] {
      radio_a.transmit(udp_packet(addr_a, server_a, 1400));
      radio_b.transmit(udp_packet(addr_b, server_b, 1400));
    });
    loop.run_for(sim::seconds(1));
  }
};

TEST(ShardedChannel, DistantCellsTransmitConcurrently) {
  // 1 km apart: different cells, far outside radio range.
  TwoIslands sharded(130.0, 1000.0);
  sharded.simultaneous_uplinks();
  ASSERT_EQ(sharded.deliveries_a.size(), 1u);
  ASSERT_EQ(sharded.deliveries_b.size(), 1u);
  EXPECT_GT(sharded.channel.busy_cells_tracked(), 1u);

  TwoIslands flat(0.0, 1000.0);
  flat.simultaneous_uplinks();
  ASSERT_EQ(flat.deliveries_a.size(), 1u);
  ASSERT_EQ(flat.deliveries_b.size(), 1u);
  EXPECT_EQ(flat.channel.busy_cells_tracked(), 1u);

  // Flat: one global busy horizon serializes the two frames, so the later
  // one lands a full transmission time after the earlier.  Sharded: the
  // cells don't interact; both frames are in flight together.
  const double tx_time = 1400.0 * 8.0 / flat.channel.rate_bps(30.0);
  const double flat_spread =
      std::abs(flat.deliveries_a[0] - flat.deliveries_b[0]);
  const double sharded_spread =
      std::abs(sharded.deliveries_a[0] - sharded.deliveries_b[0]);
  EXPECT_GT(flat_spread, tx_time * 0.9);
  EXPECT_LT(sharded_spread, tx_time * 0.9);
}

TEST(ShardedChannel, CrossCellBorderStillDefers) {
  // Gap 140 puts the radios at x = 5 and x = 135: grid cells 0 and 1 with
  // a 130 m cell edge, but only 130 m apart -- inside interaction range
  // across the border.
  TwoIslands sharded(130.0, 140.0);
  sharded.simultaneous_uplinks();
  TwoIslands flat(0.0, 140.0);
  flat.simultaneous_uplinks();

  // Within radio range across the border: the sharded medium must
  // serialize exactly like the flat one -- identical delivery times.
  ASSERT_EQ(sharded.deliveries_a.size(), 1u);
  ASSERT_EQ(sharded.deliveries_b.size(), 1u);
  EXPECT_EQ(sharded.deliveries_a, flat.deliveries_a);
  EXPECT_EQ(sharded.deliveries_b, flat.deliveries_b);
}

/// Drives a little uplink traffic from both islands on a fixed schedule
/// and returns every (delivery time, which island) observation.
std::vector<std::pair<double, int>> traffic_log(TwoIslands& w) {
  std::vector<std::pair<double, int>> log;
  auto record = [&log, &w](int island) {
    log.emplace_back(sim::to_seconds(w.loop.now() - sim::kEpoch), island);
  };
  w.sink_a.set_receive_callback([record](net::Packet) { record(0); });
  w.sink_b.set_receive_callback([record](net::Packet) { record(1); });
  for (int i = 0; i < 20; ++i) {
    w.loop.schedule(sim::milliseconds(40 * i + 7), [&w] {
      w.radio_a.transmit(udp_packet(w.addr_a, w.server_a, 700));
    });
    w.loop.schedule(sim::milliseconds(40 * i + 9), [&w] {
      w.radio_b.transmit(udp_packet(w.addr_b, w.server_b, 900));
    });
  }
  w.loop.run_for(sim::seconds(2));
  return log;
}

TEST(ShardedChannel, OneGiantCellIsBitIdenticalToFlat) {
  // A cell large enough to hold all geometry reduces sharding to the flat
  // medium: same candidate order, same busy arithmetic, same rng draws.
  TwoIslands giant(1e6, 300.0);
  TwoIslands flat(0.0, 300.0);
  const auto log_giant = traffic_log(giant);
  const auto log_flat = traffic_log(flat);
  EXPECT_EQ(log_giant, log_flat);
  EXPECT_EQ(giant.channel.stats().frames_delivered,
            flat.channel.stats().frames_delivered);
  EXPECT_EQ(giant.channel.stats().retry_attempts,
            flat.channel.stats().retry_attempts);
}

TEST(ShardedChannel, ParallelAssociationScanIsBitIdentical) {
  // Same world twice; one runs its association scans through a real
  // thread fan-out.  Everything observable must match exactly.
  TwoIslands serial(130.0, 400.0);
  TwoIslands parallel(130.0, 400.0);
  parallel.channel.set_parallel_for(
      [](std::size_t n, const std::function<void(std::size_t)>& body) {
        std::vector<std::thread> threads;
        threads.reserve(n);
        for (std::size_t i = 0; i < n; ++i) threads.emplace_back(body, i);
        for (std::thread& t : threads) t.join();
      });
  const auto log_serial = traffic_log(serial);
  const auto log_parallel = traffic_log(parallel);
  EXPECT_EQ(log_serial, log_parallel);
  EXPECT_EQ(serial.channel.associated(&serial.radio_a), &serial.wp_a);
  EXPECT_EQ(parallel.channel.associated(&parallel.radio_a), &parallel.wp_a);
}

TEST(ShardedChannel, HandoffScanFindsNewWavePointThroughCellIndex) {
  // A mobile walking between two WavePoints 200 m apart must hand off via
  // the cell-index candidate query (the WavePoints sit in different
  // cells).
  sim::EventLoop loop;
  ChannelConfig cfg = TwoIslands::make_cfg(130.0);
  WirelessChannel channel(loop, SignalModel(SignalConfig{}, {}, {},
                                            sim::Rng(2)),
                          cfg, sim::Rng(3));
  net::EthernetSegment backbone_a(loop), backbone_b(loop);
  WavePoint wp_a(channel, backbone_a, {0, 0}, "wp-a");
  WavePoint wp_b(channel, backbone_b, {200, 0}, "wp-b");
  Vec2 pos{5, 0};
  WaveLanDevice radio(channel, {10, 0, 0, 2}, [&pos] { return pos; }, "wl");
  channel.start();
  loop.run_for(sim::milliseconds(1));
  ASSERT_EQ(channel.associated(&radio), &wp_a);

  // Walk across over 20 virtual seconds.
  for (int step = 1; step <= 20; ++step) {
    loop.schedule(sim::seconds(step) - sim::milliseconds(1),
                  [&pos, step] { pos = Vec2{5.0 + 9.5 * step, 0}; });
  }
  loop.run_for(sim::seconds(21));
  EXPECT_EQ(channel.associated(&radio), &wp_b);
  EXPECT_GE(channel.stats().handoffs, 1u);
}

}  // namespace
}  // namespace tracemod::wireless
