// Parameterized sweeps over the wireless channel's physical behaviour.
#include <gtest/gtest.h>

#include "net/ethernet.hpp"
#include "net/node.hpp"
#include "wireless/wavelan_device.hpp"
#include "wireless/wavepoint.hpp"

namespace tracemod::wireless {
namespace {

/// Delivered fraction of 200 one-KB uplink frames at a given distance.
double delivered_fraction(double distance_m, std::uint64_t seed) {
  sim::EventLoop loop;
  net::EthernetSegment backbone(loop);
  WirelessChannel channel(loop, SignalModel({}, {}, {}, sim::Rng(seed)),
                          ChannelConfig{}, sim::Rng(seed + 1));
  WavePoint wp(channel, backbone, {0, 0}, "wp");
  net::EthernetDevice sink(backbone, "sink");
  sink.claim_address(net::IpAddress(10, 0, 0, 1));
  WaveLanDevice radio(channel, net::IpAddress(10, 0, 0, 2),
                      [distance_m] { return Vec2{distance_m, 0}; }, "wl");
  channel.start();
  loop.run_for(sim::milliseconds(1));

  int got = 0;
  sink.set_receive_callback([&](net::Packet) { ++got; });
  for (int i = 0; i < 200; ++i) {
    net::Packet p = net::make_udp_packet(net::IpAddress(10, 0, 0, 2),
                                         net::IpAddress(10, 0, 0, 1), 1, 2,
                                         1000);
    p.id = static_cast<std::uint64_t>(i) + 1;
    radio.transmit(std::move(p));
    loop.run_for(sim::milliseconds(50));
  }
  loop.run_for(sim::seconds(2));
  return got / 200.0;
}

class ChannelDistanceSweep : public ::testing::TestWithParam<double> {};

TEST_P(ChannelDistanceSweep, DeliveryDependsOnDistanceBand) {
  const double d = GetParam();
  const double frac = delivered_fraction(d, 11);
  if (d <= 30) {
    EXPECT_GT(frac, 0.97) << "at " << d << " m";
  } else if (d >= 110) {
    EXPECT_LT(frac, 0.60) << "at " << d << " m";
  } else {
    EXPECT_GT(frac, 0.30) << "at " << d << " m";  // transitional band
  }
}

INSTANTIATE_TEST_SUITE_P(Distances, ChannelDistanceSweep,
                         ::testing::Values(5.0, 15.0, 30.0, 55.0, 90.0,
                                           120.0));

TEST(ChannelProperty, DeliveryIsMonotoneAcrossTheBands) {
  const double near = delivered_fraction(10, 21);
  const double mid = delivered_fraction(55, 21);
  const double far = delivered_fraction(110, 21);
  EXPECT_GE(near, mid);
  EXPECT_GE(mid, far);
}

TEST(ChannelProperty, SignalLevelMonotoneInDistance) {
  sim::EventLoop loop;
  net::EthernetSegment backbone(loop);
  WirelessChannel channel(loop, SignalModel({}, {}, {}, sim::Rng(3)),
                          ChannelConfig{}, sim::Rng(4));
  WavePoint wp(channel, backbone, {0, 0}, "wp");
  Vec2 pos{1, 0};
  WaveLanDevice radio(channel, net::IpAddress(10, 0, 0, 2),
                      [&pos] { return pos; }, "wl");
  channel.start();
  loop.run_for(sim::milliseconds(1));

  double prev = 1e9;
  for (double d : {2.0, 8.0, 20.0, 45.0, 80.0, 150.0}) {
    pos = {d, 0};
    // Median-based check: average several (shadowed) samples.
    double sum = 0;
    for (int i = 0; i < 16; ++i) {
      loop.run_for(sim::milliseconds(200));
      sum += channel.signal_info(&radio).level;
    }
    const double level = sum / 16;
    EXPECT_LE(level, prev + 1.0) << "at " << d;  // allow shadow wiggle
    prev = level;
  }
}

}  // namespace
}  // namespace tracemod::wireless
