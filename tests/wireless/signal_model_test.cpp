#include "wireless/signal_model.hpp"

#include <gtest/gtest.h>

#include "sim/stats.hpp"

namespace tracemod::wireless {
namespace {

SignalModel plain_model(SignalConfig cfg = {}) {
  return SignalModel(cfg, {}, {}, sim::Rng(1));
}

TEST(SignalModel, PowerFallsWithDistance) {
  auto model = plain_model();
  const double near = model.median_rx_dbm({0, 0}, 15.0, {10, 0});
  const double far = model.median_rx_dbm({0, 0}, 15.0, {100, 0});
  EXPECT_GT(near, far);
  // Log-distance: one decade costs 10*n dB.
  EXPECT_NEAR(near - far, 30.0, 1e-9);
}

TEST(SignalModel, SubMeterClampsToOneMeter) {
  auto model = plain_model();
  EXPECT_DOUBLE_EQ(model.median_rx_dbm({0, 0}, 15.0, {0.1, 0}),
                   model.median_rx_dbm({0, 0}, 15.0, {1.0, 0}));
}

TEST(SignalModel, WallsAndZonesAttenuate) {
  SignalModel model(SignalConfig{}, {Wall{{5, -5}, {5, 5}, 7.0}},
                    {Zone{{10, 0}, 1.0, 12.0}}, sim::Rng(1));
  auto base = plain_model();
  const double open = base.median_rx_dbm({0, 0}, 15.0, {10, 0});
  const double obstructed = model.median_rx_dbm({0, 0}, 15.0, {10, 0});
  EXPECT_NEAR(open - obstructed, 19.0, 1e-9);  // wall 7 + zone 12
}

TEST(SignalModel, SnrIsRelativeToNoiseFloor) {
  SignalConfig cfg;
  cfg.noise_floor_dbm = -92.0;
  auto model = plain_model(cfg);
  EXPECT_DOUBLE_EQ(model.snr_db(-82.0), 10.0);
}

TEST(SignalModel, SignalInfoMapping) {
  auto model = plain_model();
  // Strong in-room link reads well above the noise threshold of 5.
  const SignalInfo strong = model.to_signal_info(-55.0);
  EXPECT_GT(strong.level, 15.0);
  EXPECT_GT(strong.quality, 10.0);
  // Very weak link reads at/below the driver's noise threshold.
  const SignalInfo weak = model.to_signal_info(-84.0);
  EXPECT_LT(weak.level, 5.0);
  // Mapping is monotone.
  EXPECT_GT(model.to_signal_info(-60.0).level,
            model.to_signal_info(-70.0).level);
}

TEST(SignalModel, SignalInfoClamped) {
  auto model = plain_model();
  EXPECT_GE(model.to_signal_info(-200.0).level, 0.0);
  EXPECT_LE(model.to_signal_info(+20.0).level, 40.0);
  EXPECT_LE(model.to_signal_info(+20.0).quality, 15.0);
}

TEST(SignalModel, ShadowingIsBoundedAndCorrelated) {
  SignalConfig cfg;
  cfg.shadow_sigma_db = 3.0;
  cfg.shadow_tau_s = 8.0;
  SignalModel model(cfg, {}, {}, sim::Rng(7));

  // Consecutive 100 ms samples should move slowly (correlation), and the
  // long-run spread should be near the configured sigma.
  double prev = 0.0;
  double max_step = 0.0;
  sim::RunningStats spread;
  for (int i = 1; i <= 5000; ++i) {
    model.rx_dbm({0, 0}, 15.0, {10, 0},
                 sim::kEpoch + sim::milliseconds(100 * i));
    const double s = model.shadow_db();
    max_step = std::max(max_step, std::abs(s - prev));
    prev = s;
    spread.add(s);
  }
  EXPECT_LT(max_step, 4.0);  // no teleporting
  EXPECT_NEAR(spread.stddev(), cfg.shadow_sigma_db, 1.0);
  EXPECT_NEAR(spread.mean(), 0.0, 0.5);
}

TEST(SignalModel, ShadowDoesNotAdvanceBackwards) {
  auto model = plain_model();
  model.rx_dbm({0, 0}, 15.0, {10, 0}, sim::kEpoch + sim::seconds(10));
  const double s = model.shadow_db();
  model.rx_dbm({0, 0}, 15.0, {10, 0}, sim::kEpoch + sim::seconds(5));
  EXPECT_DOUBLE_EQ(model.shadow_db(), s);
}

TEST(SignalModel, FastFadeZeroMean) {
  auto model = plain_model();
  sim::RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(model.fast_fade_db());
  EXPECT_NEAR(s.mean(), 0.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.2);
}

}  // namespace
}  // namespace tracemod::wireless
