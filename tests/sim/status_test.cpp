// The status-plane contract (sim/status/status.hpp, DESIGN.md section 14):
// TMST snapshots round-trip every field through the on-disk format; any
// damage -- truncation, bad magic, CRC-breaking bit flips -- is diagnosed
// as corrupt instead of yielding a wrong snapshot; and the StatusBoard
// publishes atomically, so the file on disk is valid after every publish
// and the last good snapshot survives a kill.
#include "sim/status/status.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/io/durable.hpp"
#include "sim/io/fault_plan.hpp"
#include "sim/io/file_sink.hpp"

namespace tracemod::sim::status {
namespace {

std::string tmp(const std::string& name) {
  return testing::TempDir() + "tracemod_status_" + name;
}

StatusSnapshot sample_snapshot() {
  StatusSnapshot s;
  s.tool_version = "0.9.0";
  s.driver = "sweep";
  s.phase = "bench:Wean/web";
  s.units_label = "trials";
  s.seq = 17;
  s.pid = 4242;
  s.published_unix_ms = 1754600000123ull;
  s.units_done = 9.0;
  s.units_total = 24.0;
  s.events_dispatched = 1234567;
  s.retries = 3;
  s.errors = 1;
  s.windows_distilled = 88;
  s.windows_shed = 2;
  s.records_streamed = 99991;
  s.sim_seconds = 512.25;
  s.wall_seconds = 1.75;
  s.sim_per_wall = 292.71;
  s.eta_seconds = 2.9;
  s.finished = true;
  s.exit_code = 5;
  return s;
}

void expect_equal(const StatusSnapshot& a, const StatusSnapshot& b) {
  EXPECT_EQ(a.tool_version, b.tool_version);
  EXPECT_EQ(a.driver, b.driver);
  EXPECT_EQ(a.phase, b.phase);
  EXPECT_EQ(a.units_label, b.units_label);
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.pid, b.pid);
  EXPECT_EQ(a.published_unix_ms, b.published_unix_ms);
  EXPECT_EQ(a.units_done, b.units_done);
  EXPECT_EQ(a.units_total, b.units_total);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.errors, b.errors);
  EXPECT_EQ(a.windows_distilled, b.windows_distilled);
  EXPECT_EQ(a.windows_shed, b.windows_shed);
  EXPECT_EQ(a.records_streamed, b.records_streamed);
  EXPECT_EQ(a.sim_seconds, b.sim_seconds);
  EXPECT_EQ(a.wall_seconds, b.wall_seconds);
  EXPECT_EQ(a.sim_per_wall, b.sim_per_wall);
  EXPECT_EQ(a.eta_seconds, b.eta_seconds);
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.exit_code, b.exit_code);
}

TEST(StatusFormat, RoundTripPreservesEveryField) {
  const StatusSnapshot want = sample_snapshot();
  const std::vector<std::uint8_t> bytes = encode_status(want);
  const StatusReadResult read = decode_status(bytes.data(), bytes.size());
  ASSERT_EQ(read.status, StatusReadStatus::kOk) << read.message;
  expect_equal(read.snapshot, want);
}

TEST(StatusFormat, MissingFileIsDistinguishedFromDamage) {
  const StatusReadResult read = read_status_file(tmp("nonexistent.status"));
  EXPECT_EQ(read.status, StatusReadStatus::kMissing);
}

TEST(StatusFormat, TruncationAtEveryLengthIsCorruptNeverWrong) {
  const std::vector<std::uint8_t> bytes = encode_status(sample_snapshot());
  // A torn write can chop the file anywhere; no prefix may ever decode.
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    const StatusReadResult read = decode_status(bytes.data(), keep);
    EXPECT_EQ(read.status, StatusReadStatus::kCorrupt) << "keep=" << keep;
    EXPECT_FALSE(read.message.empty());
  }
}

TEST(StatusFormat, BadMagicAndVersionAreRejected) {
  std::vector<std::uint8_t> bytes = encode_status(sample_snapshot());
  std::vector<std::uint8_t> wrong_magic = bytes;
  wrong_magic[0] = 'X';
  EXPECT_EQ(decode_status(wrong_magic.data(), wrong_magic.size()).status,
            StatusReadStatus::kCorrupt);

  std::vector<std::uint8_t> wrong_version = bytes;
  wrong_version[4] = 0xEE;  // u16 version little-endian low byte
  EXPECT_EQ(decode_status(wrong_version.data(), wrong_version.size()).status,
            StatusReadStatus::kCorrupt);
}

TEST(StatusFormat, PayloadBitFlipsAreCaughtByTheCrc) {
  const std::vector<std::uint8_t> bytes = encode_status(sample_snapshot());
  const std::size_t header = bytes.size() > 14 ? 14 : 0;
  for (std::size_t i = header; i < bytes.size(); i += 7) {
    std::vector<std::uint8_t> damaged = bytes;
    damaged[i] ^= 0x40;
    const StatusReadResult read = decode_status(damaged.data(),
                                                damaged.size());
    EXPECT_EQ(read.status, StatusReadStatus::kCorrupt) << "byte " << i;
  }
}

TEST(StatusFormat, JsonCarriesTheSchemaAndEveryCounter) {
  std::ostringstream out;
  write_status_json(out, sample_snapshot());
  const std::string json = out.str();
  EXPECT_NE(json.find("\"schema\": \"tracemod-status-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"tool_version\": \"0.9.0\""), std::string::npos);
  EXPECT_NE(json.find("\"phase\": \"bench:Wean/web\""), std::string::npos);
  EXPECT_NE(json.find("\"events_dispatched\": 1234567"), std::string::npos);
  EXPECT_NE(json.find("\"exit_code\": 5"), std::string::npos);
}

TEST(StatusFormat, UnknownEtaAndUnfinishedExitCodeAreJsonNull) {
  StatusSnapshot s = sample_snapshot();
  s.eta_seconds = -1.0;
  s.finished = false;
  std::ostringstream out;
  write_status_json(out, s);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"eta_seconds\": null"), std::string::npos);
  EXPECT_NE(json.find("\"exit_code\": null"), std::string::npos);
}

TEST(StatusBoardContract, DisabledBoardIsInert) {
  StatusBoard board;
  EXPECT_FALSE(board.enabled());
  // Every hook must be a no-op on the null/default path.
  board.set_phase("x");
  board.set_units("trials", 10);
  board.add_units_done(1);
  board.note_dispatch(100, 1.0);
  board.maybe_publish();
  board.publish_now();
  board.finish(0);
  EXPECT_EQ(board.publishes(), 0u);
}

TEST(StatusBoardContract, UnwritablePathLeavesTheBoardDisabled) {
  StatusBoard board;
  StatusBoard::Config cfg;
  cfg.path = tmp("no_such_dir") + "/deep/run.status";
  cfg.driver = "test";
  EXPECT_FALSE(board.configure(cfg));
  EXPECT_FALSE(board.enabled());
}

TEST(StatusBoardContract, CountersFlowIntoThePublishedSnapshot) {
  StatusBoard board;
  StatusBoard::Config cfg;
  cfg.path = tmp("counters.status");
  cfg.driver = "sweep";
  cfg.min_publish_interval_s = 0.0;
  ASSERT_TRUE(board.configure(cfg));
  EXPECT_TRUE(board.enabled());
  EXPECT_EQ(board.publishes(), 1u);  // configure publishes snapshot #1

  board.set_units("trials", 4);
  board.set_phase("bench:Wean/web");  // publishes immediately
  board.add_units_done(2);
  board.add_retries(1);
  board.add_errors(1);
  board.note_dispatch(5000, 123.5);
  board.publish_now();

  const StatusReadResult read = read_status_file(cfg.path);
  ASSERT_EQ(read.status, StatusReadStatus::kOk) << read.message;
  const StatusSnapshot& s = read.snapshot;
  EXPECT_EQ(s.driver, "sweep");
  EXPECT_EQ(s.phase, "bench:Wean/web");
  EXPECT_EQ(s.units_label, "trials");
  EXPECT_EQ(s.units_done, 2.0);
  EXPECT_EQ(s.units_total, 4.0);
  EXPECT_EQ(s.events_dispatched, 5000u);
  EXPECT_EQ(s.retries, 1u);
  EXPECT_EQ(s.errors, 1u);
  EXPECT_EQ(s.sim_seconds, 123.5);
  EXPECT_FALSE(s.finished);
  EXPECT_GE(s.seq, 3u);
  EXPECT_EQ(board.write_failures(), 0u);
}

TEST(StatusBoardContract, FinishPublishesTheTerminalSnapshot) {
  StatusBoard board;
  StatusBoard::Config cfg;
  cfg.path = tmp("finish.status");
  cfg.driver = "campus";
  ASSERT_TRUE(board.configure(cfg));
  board.finish(5);

  const StatusReadResult read = read_status_file(cfg.path);
  ASSERT_EQ(read.status, StatusReadStatus::kOk);
  EXPECT_TRUE(read.snapshot.finished);
  EXPECT_EQ(read.snapshot.exit_code, 5);
  EXPECT_EQ(read.snapshot.phase, "finished");
}

TEST(StatusBoardContract, EveryPublishLeavesAValidFileBehind) {
  // The atomic-rename discipline: no matter when a reader (or a kill)
  // lands, the path always holds a complete CRC-valid snapshot.
  StatusBoard board;
  StatusBoard::Config cfg;
  cfg.path = tmp("atomic.status");
  cfg.driver = "distill";
  cfg.min_publish_interval_s = 0.0;
  ASSERT_TRUE(board.configure(cfg));
  board.set_units("windows", 64);
  std::uint64_t last_seq = 0;
  for (int i = 0; i < 64; ++i) {
    board.add_units_done(1);
    board.add_windows_distilled(1);
    board.publish_now();
    const StatusReadResult read = read_status_file(cfg.path);
    ASSERT_EQ(read.status, StatusReadStatus::kOk) << "publish " << i;
    EXPECT_GT(read.snapshot.seq, last_seq);
    last_seq = read.snapshot.seq;
    EXPECT_EQ(read.snapshot.windows_distilled,
              static_cast<std::uint64_t>(i + 1));
  }
  // No stale staging file survives a successful publish.
  std::ifstream tmp_file(cfg.path + ".tmp");
  EXPECT_FALSE(tmp_file.good());
}

TEST(StatusBoardContract, SimClockIsMonotoneAcrossWorlds) {
  // Parallel trial worlds report their own clocks; the published value is
  // the max, never a regression to a younger world's time.
  StatusBoard board;
  StatusBoard::Config cfg;
  cfg.path = tmp("monotone.status");
  cfg.driver = "sweep";
  cfg.min_publish_interval_s = 0.0;
  ASSERT_TRUE(board.configure(cfg));
  board.note_dispatch(10, 50.0);
  board.note_dispatch(10, 12.0);  // younger world finishes later
  board.publish_now();
  const StatusReadResult read = read_status_file(cfg.path);
  ASSERT_EQ(read.status, StatusReadStatus::kOk);
  EXPECT_EQ(read.snapshot.sim_seconds, 50.0);
  EXPECT_EQ(read.snapshot.events_dispatched, 20u);
}

TEST(StatusBoardContract, CrashAtEverySyscallLeavesPreviousOrNewSnapshot) {
  // The acceptance bar for the status plane: kill the publisher at ANY
  // syscall of the publish sequence and a reader must see the previous
  // complete snapshot or the new complete snapshot -- never kCorrupt,
  // never a snapshot with wrong values.
  StatusSnapshot v1 = sample_snapshot();
  v1.seq = 1;
  v1.phase = "previous";
  StatusSnapshot v2 = sample_snapshot();
  v2.seq = 2;
  v2.phase = "next phase with a longer label";
  v2.events_dispatched = 999999999;
  const std::vector<std::uint8_t> img1 = encode_status(v1);
  const std::vector<std::uint8_t> img2 = encode_status(v2);
  const auto view = [](const std::vector<std::uint8_t>& img) {
    return std::string_view(reinterpret_cast<const char*>(img.data()),
                            img.size());
  };

  for (std::uint64_t crash_at = 1; crash_at <= 8; ++crash_at) {
    const std::string path =
        tmp("crash_sweep_" + std::to_string(crash_at) + ".status");
    ASSERT_TRUE(io::write_file_atomic(path, view(img1)).ok);

    io::FaultPlanConfig cfg;
    cfg.seed = 100 + crash_at;
    cfg.crash_at_op = crash_at;
    io::FaultPlan plan(cfg);
    (void)io::write_file_atomic(path, view(img2), &plan);

    const StatusReadResult read = read_status_file(path);
    ASSERT_EQ(read.status, StatusReadStatus::kOk)
        << "crash at op " << crash_at << ": " << read.message;
    ASSERT_TRUE(read.snapshot.seq == 1 || read.snapshot.seq == 2)
        << "crash at op " << crash_at;
    expect_equal(read.snapshot, read.snapshot.seq == 1 ? v1 : v2);
  }
}

TEST(StatusBoardContract, FailedPublishDropsTheSnapshotNeverAborts) {
  // Degradation policy (DESIGN.md section 15): a status publish that
  // cannot land is dropped and counted; the run itself never aborts and
  // the board keeps trying on later heartbeats.
  namespace fs = std::filesystem;
  const std::string dir = tmp("vanishing_dir");
  fs::create_directory(dir);
  StatusBoard board;
  StatusBoard::Config cfg;
  cfg.path = dir + "/run.status";
  cfg.driver = "sweep";
  cfg.min_publish_interval_s = 0.0;
  ASSERT_TRUE(board.configure(cfg));

  const std::uint64_t failures_before =
      io::io_counters().status_publish_failures.load();
  fs::remove_all(dir);  // the directory disappears mid-run
  board.add_units_done(1);
  board.publish_now();

  EXPECT_TRUE(board.enabled());  // still trying, not aborted
  EXPECT_GE(board.write_failures(), 1u);
  EXPECT_GT(io::io_counters().status_publish_failures.load(),
            failures_before);

  // The plane heals when the directory comes back.
  fs::create_directory(dir);
  board.publish_now();
  EXPECT_EQ(read_status_file(cfg.path).status, StatusReadStatus::kOk);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace tracemod::sim::status
