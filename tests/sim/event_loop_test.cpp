#include "sim/event_loop.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace tracemod::sim {
namespace {

TEST(EventLoop, StartsAtEpoch) {
  EventLoop loop;
  EXPECT_EQ(loop.now(), kEpoch);
  EXPECT_EQ(loop.pending_count(), 0u);
}

TEST(EventLoop, DispatchesInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(milliseconds(30), [&] { order.push_back(3); });
  loop.schedule(milliseconds(10), [&] { order.push_back(1); });
  loop.schedule(milliseconds(20), [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), kEpoch + milliseconds(30));
}

TEST(EventLoop, FifoAmongEqualTimestamps) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.schedule(milliseconds(5), [&order, i] { order.push_back(i); });
  }
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, ClockAdvancesToEventTime) {
  EventLoop loop;
  TimePoint seen{};
  loop.schedule(seconds(2), [&] { seen = loop.now(); });
  loop.run();
  EXPECT_EQ(seen, kEpoch + seconds(2));
}

TEST(EventLoop, CancelPreventsDispatch) {
  EventLoop loop;
  bool ran = false;
  EventId id = loop.schedule(milliseconds(1), [&] { ran = true; });
  EXPECT_TRUE(loop.pending(id));
  EXPECT_TRUE(loop.cancel(id));
  EXPECT_FALSE(loop.pending(id));
  loop.run();
  EXPECT_FALSE(ran);
}

TEST(EventLoop, CancelTwiceReturnsFalse) {
  EventLoop loop;
  EventId id = loop.schedule(milliseconds(1), [] {});
  EXPECT_TRUE(loop.cancel(id));
  EXPECT_FALSE(loop.cancel(id));
  EXPECT_FALSE(loop.cancel(0));
}

TEST(EventLoop, CancelAfterRunReturnsFalse) {
  EventLoop loop;
  EventId id = loop.schedule(milliseconds(1), [] {});
  loop.run();
  EXPECT_FALSE(loop.cancel(id));
}

TEST(EventLoop, RunUntilStopsAtBoundaryAndAdvancesClock) {
  EventLoop loop;
  int count = 0;
  loop.schedule(milliseconds(10), [&] { ++count; });
  loop.schedule(milliseconds(20), [&] { ++count; });
  loop.schedule(milliseconds(30), [&] { ++count; });
  loop.run_until(kEpoch + milliseconds(25));
  EXPECT_EQ(count, 2);
  EXPECT_EQ(loop.now(), kEpoch + milliseconds(25));
  loop.run();
  EXPECT_EQ(count, 3);
}

TEST(EventLoop, EventsScheduledDuringDispatchRun) {
  EventLoop loop;
  int depth = 0;
  loop.schedule(milliseconds(1), [&] {
    ++depth;
    loop.schedule(milliseconds(1), [&] { ++depth; });
  });
  loop.run();
  EXPECT_EQ(depth, 2);
  EXPECT_EQ(loop.now(), kEpoch + milliseconds(2));
}

TEST(EventLoop, PastSchedulingClampsToNow) {
  EventLoop loop;
  loop.run_until(kEpoch + seconds(1));
  TimePoint fired{};
  loop.schedule_at(kEpoch, [&] { fired = loop.now(); });
  loop.run();
  EXPECT_EQ(fired, kEpoch + seconds(1));
}

TEST(EventLoop, DispatchedCounter) {
  EventLoop loop;
  for (int i = 0; i < 7; ++i) loop.schedule(milliseconds(i), [] {});
  loop.run();
  EXPECT_EQ(loop.dispatched(), 7u);
}

TEST(EventLoop, CancelHeavyWorkloadKeepsQueueBounded) {
  // Regression for heap rot: a repeatedly re-armed timer (the dominant
  // cancel pattern -- TCP retransmission timers, NFS retry timers) used to
  // leave every cancelled entry in the priority queue until its timestamp
  // came up.  Compaction must keep the queue proportional to the *live*
  // event count, not the cancel history.
  EventLoop loop;
  Timer t(loop);
  std::size_t peak = 0;
  for (int i = 0; i < 100'000; ++i) {
    t.arm(seconds(3600) + milliseconds(i), [] {});
    peak = std::max(peak, loop.queue_size());
  }
  // Live events: exactly the one armed timer.  The queue may carry some
  // dead entries between compactions, but never more than the compaction
  // threshold's worth.
  EXPECT_EQ(loop.pending_count(), 1u);
  EXPECT_LE(loop.queue_size(), 64u);
  EXPECT_LE(peak, 256u);

  int fired = 0;
  t.cancel();
  t.arm(milliseconds(1), [&] { ++fired; });
  loop.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.queue_size(), 0u);
}

TEST(EventLoop, CompactionPreservesDispatchOrder) {
  EventLoop loop;
  // Arm-and-cancel enough background events to force several compactions,
  // interleaved with live events whose order we then verify.
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule(milliseconds(100 + i), [&order, i] { order.push_back(i); });
  }
  for (int i = 0; i < 1000; ++i) {
    const EventId id = loop.schedule(seconds(10), [] {});
    loop.cancel(id);
  }
  loop.run();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Timer, ArmAndFire) {
  EventLoop loop;
  Timer t(loop);
  int fired = 0;
  t.arm(milliseconds(5), [&] { ++fired; });
  EXPECT_TRUE(t.armed());
  loop.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.armed());
}

TEST(Timer, RearmReplacesPrevious) {
  EventLoop loop;
  Timer t(loop);
  int which = 0;
  t.arm(milliseconds(5), [&] { which = 1; });
  t.arm(milliseconds(10), [&] { which = 2; });
  loop.run();
  EXPECT_EQ(which, 2);
  EXPECT_EQ(loop.now(), kEpoch + milliseconds(10));
}

TEST(Timer, CancelStopsFire) {
  EventLoop loop;
  Timer t(loop);
  bool fired = false;
  t.arm(milliseconds(5), [&] { fired = true; });
  t.cancel();
  loop.run();
  EXPECT_FALSE(fired);
}

TEST(Timer, DestructorCancels) {
  EventLoop loop;
  bool fired = false;
  {
    Timer t(loop);
    t.arm(milliseconds(5), [&] { fired = true; });
  }
  loop.run();
  EXPECT_FALSE(fired);
}

TEST(TimeHelpers, Conversions) {
  EXPECT_EQ(seconds(1), milliseconds(1000));
  EXPECT_EQ(milliseconds(1), microseconds(1000));
  EXPECT_DOUBLE_EQ(to_seconds(milliseconds(2500)), 2.5);
  EXPECT_EQ(from_seconds(0.25), milliseconds(250));
  EXPECT_DOUBLE_EQ(to_milliseconds(microseconds(1500)), 1.5);
}

}  // namespace
}  // namespace tracemod::sim
