// The operator-new/delete interposer's contracts: counting without
// changing behaviour, byte symmetry through unsized delete, per-thread
// accumulation that is safe (and TSan-clean) under a concurrent TaskPool,
// suspension for instrument bookkeeping, and the "zero heap allocs in
// steady state" proof pattern the profiler builds on.
#include "sim/perf/alloc_telemetry.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <functional>
#include <vector>

#include "sim/perf/perf.hpp"
#include "sim/task_pool.hpp"

namespace tracemod::sim::perf {
namespace {

TEST(AllocTelemetry, InterposerIsLinkedAndActive) {
  ensure_alloc_interposer();
  EXPECT_TRUE(alloc_interposer_active());
}

TEST(AllocTelemetry, NewAndDeleteAreCountedWithSymmetricBytes) {
  const AllocTotals before = thread_alloc_totals();
  char* p = new char[1024];
  // Touch the block so the allocation cannot be elided.
  p[0] = 1;
  p[1023] = 2;
  const AllocTotals mid = thread_alloc_totals() - before;
  EXPECT_GE(mid.allocs, 1u);
  EXPECT_GE(mid.bytes_allocated, 1024u);
  delete[] p;
  const AllocTotals after = thread_alloc_totals() - before;
  EXPECT_GE(after.frees, 1u);
  // Byte totals are symmetric (usable size on both sides), so a matched
  // new/delete pair nets zero live bytes.
  EXPECT_EQ(after.bytes_allocated, after.bytes_freed);
  EXPECT_EQ(after.live_bytes(), 0);
}

TEST(AllocTelemetry, AlignedAndNothrowVariantsAreCounted) {
  const AllocTotals before = thread_alloc_totals();
  struct alignas(64) Wide {
    char data[64];
  };
  Wide* w = new Wide;
  w->data[0] = 1;
  char* n = new (std::nothrow) char[256];
  ASSERT_NE(n, nullptr);
  n[0] = 1;
  delete w;
  delete[] n;
  const AllocTotals d = thread_alloc_totals() - before;
  EXPECT_GE(d.allocs, 2u);
  EXPECT_GE(d.frees, 2u);
  EXPECT_EQ(d.bytes_allocated, d.bytes_freed);
}

TEST(AllocTelemetry, SuspendGuardExcludesBookkeeping) {
  const AllocTotals before = thread_alloc_totals();
  {
    AllocSuspendGuard guard;
    char* p = new char[4096];
    p[0] = 1;
    delete[] p;
  }
  const AllocTotals d = thread_alloc_totals() - before;
  EXPECT_EQ(d.allocs, 0u);
  EXPECT_EQ(d.frees, 0u);
  EXPECT_EQ(d.bytes_allocated, 0u);
}

TEST(AllocTelemetry, ProcessTotalsAccumulateAcrossTaskPoolWorkers) {
  // Eight workers allocating concurrently: the per-thread relaxed-atomic
  // blocks must neither lose counts nor trip TSan (this test is part of
  // the sanitizer suite).
  constexpr unsigned kWorkers = 8;
  constexpr std::size_t kAllocsPerWorker = 1000;
  const AllocTotals before = alloc_totals();
  TaskPool pool(kWorkers);
  std::vector<std::function<void()>> tasks;
  for (unsigned w = 0; w < kWorkers; ++w) {
    tasks.emplace_back([] {
      for (std::size_t i = 0; i < kAllocsPerWorker; ++i) {
        char* p = new char[64];
        *static_cast<volatile char*>(p) = 1;
        delete[] p;
      }
    });
  }
  pool.run_all(std::move(tasks));
  const AllocTotals d = alloc_totals() - before;
  EXPECT_GE(d.allocs, static_cast<std::uint64_t>(kWorkers) * kAllocsPerWorker);
  EXPECT_GE(d.frees, static_cast<std::uint64_t>(kWorkers) * kAllocsPerWorker);
}

TEST(AllocTelemetry, ThreadTotalsAreThreadLocal) {
  const AllocTotals before = thread_alloc_totals();
  TaskPool pool(2);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 2; ++i) {
    tasks.emplace_back([] {
      for (int j = 0; j < 100; ++j) {
        char* p = new char[32];
        *static_cast<volatile char*>(p) = 1;
        delete[] p;
      }
    });
  }
  pool.run_all(std::move(tasks));
  const AllocTotals d = thread_alloc_totals() - before;
  // Worker allocations are not attributed to this thread; only run_all's
  // own bookkeeping (task vectors) can land here.
  EXPECT_LT(d.allocs, 100u);
}

TEST(AllocTelemetry, ProfilerProvesZeroAllocSteadyState) {
  // The proof pattern from the issue: a pre-sized subsystem shows zero
  // attributed allocations in its steady-state scope, while a naively
  // allocating one is caught red-handed.  The profiler's own bookkeeping
  // (node creation on first entry) is excluded by AllocSuspendGuard, so
  // attribution reflects only the code under measurement.
  std::vector<int> presized;
  presized.reserve(4096);

  PerfProfiler profiler;
  {
    PerfSession session(profiler);
    {
      PerfScope scope(Domain::kOther, "steady.presized");
      for (int i = 0; i < 4096; ++i) presized.push_back(i);
    }
    {
      PerfScope scope(Domain::kOther, "steady.allocating");
      std::vector<int> growing;
      for (int i = 0; i < 4096; ++i) growing.push_back(i);
    }
  }

  const PerfProfiler::Node* presized_node = nullptr;
  const PerfProfiler::Node* allocating_node = nullptr;
  for (const auto& n : profiler.nodes()) {
    if (std::string(n.label) == "steady.presized") presized_node = &n;
    if (std::string(n.label) == "steady.allocating") allocating_node = &n;
  }
  ASSERT_NE(presized_node, nullptr);
  ASSERT_NE(allocating_node, nullptr);
  EXPECT_EQ(presized_node->allocs, 0u)
      << "pre-sized steady state must not touch the heap";
  EXPECT_GT(allocating_node->allocs, 0u)
      << "a growing vector must be caught by attribution";
  EXPECT_GT(allocating_node->alloc_bytes, 0u);
}

}  // namespace
}  // namespace tracemod::sim::perf
