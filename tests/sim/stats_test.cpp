#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tracemod::sim {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, MatchesHandComputedSampleStddev) {
  // Paper tables use sample standard deviation (n-1).
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStats, TracksMinMax) {
  RunningStats s;
  for (double x : {3.0, -1.0, 10.0, 2.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(BatchStats, VectorHelpers) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 2.5);
  EXPECT_NEAR(stddev_of(xs), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(min_of(xs), 1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 4.0);
}

TEST(BatchStats, EmptyVectorsAreZero) {
  const std::vector<double> xs;
  EXPECT_DOUBLE_EQ(mean_of(xs), 0.0);
  EXPECT_DOUBLE_EQ(stddev_of(xs), 0.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0.5), 0.0);
}

TEST(BatchStats, PercentileInterpolates) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0.5), 25.0);
}

TEST(BatchStats, PercentileClampsOutOfRangeP) {
  const std::vector<double> xs{10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(percentile_of(xs, -0.5), 10.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 1.5), 30.0);
}

TEST(BatchStats, PercentileSingleElement) {
  const std::vector<double> xs{42.0};
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0.5), 42.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 1.0), 42.0);
}

TEST(BatchStats, PercentileExtremesAreExactOrderStatistics) {
  // p=0 / p=1 must return min/max exactly -- no interpolation residue.
  const std::vector<double> xs{0.1 + 0.2, 1.0 / 3.0, 7e-3};
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0.0), 7e-3);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 1.0), 1.0 / 3.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.9);    // bin 4
  h.add(-3.0);   // clamps to bin 0
  h.add(100.0);  // clamps to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, ZeroBinsPromotedToOne) {
  Histogram h(0.0, 10.0, 0);
  h.add(5.0);
  h.add(-1.0);
  EXPECT_EQ(h.bins(), 1u);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.bin_count(0), 2u);
}

TEST(Histogram, DegenerateRangeCollapsesToSingleBin) {
  // lo >= hi: every sample lands in bin 0 instead of dividing by zero.
  Histogram h(5.0, 5.0, 4);
  h.add(5.0);
  h.add(100.0);
  h.add(-100.0);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.bin_count(0), 3u);
  for (std::size_t i = 1; i < h.bins(); ++i) EXPECT_EQ(h.bin_count(i), 0u);
}

TEST(Histogram, ExactUpperEdgeClampsToLastBin) {
  Histogram h(0.0, 10.0, 5);
  h.add(10.0);  // frac == 1.0 would index one past the end
  EXPECT_EQ(h.bin_count(4), 1u);
}

TEST(Histogram, SumAccumulatesIncludingClampedSamples) {
  Histogram h(0.0, 10.0, 2);
  h.add(3.0);
  h.add(-1.0);
  h.add(25.0);
  EXPECT_DOUBLE_EQ(h.sum(), 27.0);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.1);
  h.add(0.9);
  h.add(0.95);
  const std::string out = h.render("latency");
  EXPECT_NE(out.find("latency"), std::string::npos);
  EXPECT_NE(out.find("3 samples"), std::string::npos);
}

}  // namespace
}  // namespace tracemod::sim
