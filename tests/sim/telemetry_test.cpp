#include "sim/telemetry.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/sim_context.hpp"
#include "sim/trace_event.hpp"

namespace tracemod::sim {
namespace {

// --- flight recorder -------------------------------------------------------

TEST(FlightRecorder, TrackRegistrationIsDeduplicatedAndOrdered) {
  FlightRecorder rec(16);
  const TrackId a = rec.track("mobile", "ip");
  const TrackId b = rec.track("mobile", "eth");
  const TrackId a2 = rec.track("mobile", "ip");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_NE(a, kNoTrack);
  ASSERT_EQ(rec.tracks().size(), 2u);
  EXPECT_EQ(rec.tracks()[a - 1].layer, "ip");
  EXPECT_EQ(rec.tracks()[b - 1].layer, "eth");
}

TEST(FlightRecorder, RecordsSpansAndInstants) {
  FlightRecorder rec(16);
  const TrackId t = rec.track("mobile", "ip");
  rec.begin(t, "pkt", 7, kEpoch, 1500.0);
  rec.instant(t, "forward", 7, kEpoch + milliseconds(1));
  rec.end(t, "pkt", 7, kEpoch + milliseconds(2));
  ASSERT_EQ(rec.events().size(), 3u);
  EXPECT_EQ(rec.events()[0].phase, TraceEvent::Phase::kBegin);
  EXPECT_EQ(rec.events()[0].id, 7u);
  EXPECT_DOUBLE_EQ(rec.events()[0].value, 1500.0);
  EXPECT_EQ(rec.events()[2].phase, TraceEvent::Phase::kEnd);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(FlightRecorder, CapCountsDropsInsteadOfGrowing) {
  FlightRecorder rec(2);
  const TrackId t = rec.track("n", "l");
  rec.instant(t, "a", 1, kEpoch);
  rec.instant(t, "b", 2, kEpoch);
  rec.instant(t, "c", 3, kEpoch);
  rec.instant(t, "d", 4, kEpoch);
  EXPECT_EQ(rec.events().size(), 2u);
  EXPECT_EQ(rec.dropped(), 2u);
}

TEST(JsonEscape, EscapesControlQuoteAndBackslash) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string("a\x01z")), "a\\u0001z");
}

// A tiny structural JSON checker: verifies string/escape correctness and
// that braces/brackets balance.  Not a full parser, but enough to catch the
// classic exporter bugs (trailing commas are caught by the real validation
// in CI via python -m json.tool).
bool json_well_formed(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip escaped char
      } else if (c == '"') {
        in_string = false;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control char inside a string
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c) return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty();
}

TEST(ChromeTrace, SingleSnapshotIsWellFormed) {
  TelemetrySnapshot snap;
  snap.tracks = {{"mobile", "ip"}, {"server", "eth"}};
  snap.events = {
      {TraceEvent::Phase::kBegin, 1, "pkt", 1, kEpoch, 40.0},
      {TraceEvent::Phase::kEnd, 1, "pkt", 1, kEpoch + milliseconds(3), 0.0},
      {TraceEvent::Phase::kInstant, 2, "eth.drop", 2, kEpoch, 0.0},
      {TraceEvent::Phase::kCounter, 2, "depth", 0, kEpoch, 4.0},
  };
  std::ostringstream out;
  write_chrome_trace(out, snap);
  const std::string json = out.str();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
}

TEST(ChromeTrace, MergedSnapshotsGetDistinctProcessesAndLabels) {
  auto make = [](const char* node) {
    auto s = std::make_shared<TelemetrySnapshot>();
    s->tracks = {{node, "ip"}};
    s->events = {
        {TraceEvent::Phase::kInstant, 1, "x", 1, kEpoch, 0.0}};
    return s;
  };
  std::vector<LabeledTelemetry> snaps{{"trial0", make("mobile")},
                                      {"trial1", make("mobile")}};
  std::ostringstream out;
  write_chrome_trace(out, snaps);
  const std::string json = out.str();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_NE(json.find("trial0/mobile"), std::string::npos);
  EXPECT_NE(json.find("trial1/mobile"), std::string::npos);
  // The two snapshots' single track must land on different pids.
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
}

TEST(TelemetrySnapshot, DistinctLayersCountsLayerNamesOnce) {
  TelemetrySnapshot snap;
  snap.tracks = {{"mobile", "ip"}, {"server", "ip"}, {"mobile", "eth"}};
  EXPECT_EQ(snap.distinct_layers(), 2u);
}

// --- Telemetry switch ------------------------------------------------------

TEST(Telemetry, DisabledByDefaultAndTrackReturnsNoTrack) {
  SimContext ctx(1);
  EXPECT_FALSE(ctx.telemetry().enabled());
  EXPECT_EQ(ctx.telemetry().track("mobile", "ip"), kNoTrack);
}

TEST(Telemetry, EnabledContextRecordsAndCaptures) {
  TelemetryConfig cfg;
  cfg.enabled = true;
  SimContext ctx(1, cfg);
  ASSERT_TRUE(ctx.telemetry().enabled());
  const TrackId t = ctx.telemetry().track("mobile", "ip");
  ASSERT_NE(t, kNoTrack);
  ctx.telemetry().recorder().instant(t, "x", 1, kEpoch);
  ++ctx.metrics().counter("net.packets_sent");
  ctx.metrics().histogram("e2e.latency_ms", 0, 10, 2).add(3.0);
  ctx.metrics().series("depth").sample(kEpoch, 1.0);

  const TelemetrySnapshot snap = capture_telemetry(ctx);
  EXPECT_EQ(snap.events.size(), 1u);
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "net.packets_sent");
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.total(), 1u);
  ASSERT_EQ(snap.series.size(), 1u);
  EXPECT_EQ(snap.series[0].second.samples().size(), 1u);
}

// --- MetricsRegistry extensions -------------------------------------------

TEST(MetricsRegistry, HistogramRegistrationIsIdempotent) {
  MetricsRegistry m;
  Histogram& h1 = m.histogram("lat", 0.0, 100.0, 10);
  h1.add(5.0);
  // A second registration with a different shape returns the same channel
  // and keeps the original shape and contents.
  Histogram& h2 = m.histogram("lat", 0.0, 1.0, 2);
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bins(), 10u);
  EXPECT_EQ(h2.total(), 1u);
}

TEST(MetricsRegistry, SeriesReferencesAreStable) {
  MetricsRegistry m;
  TimeSeries& s = m.series("depth");
  // Registering other channels must not move existing ones (node-based map).
  for (int i = 0; i < 64; ++i) m.series("s" + std::to_string(i));
  EXPECT_EQ(&s, &m.series("depth"));
  s.sample(kEpoch, 2.0);
  ASSERT_NE(m.find_series("depth"), nullptr);
  EXPECT_EQ(m.find_series("depth")->samples().size(), 1u);
  EXPECT_EQ(m.find_series("absent"), nullptr);
  EXPECT_EQ(m.find_histogram("absent"), nullptr);
}

TEST(MetricsRegistry, ChannelsEnumerateInNameOrder) {
  MetricsRegistry m;
  m.histogram("zeta", 0, 1, 1);
  m.histogram("alpha", 0, 1, 1);
  m.series("zeta");
  m.series("alpha");
  std::vector<std::string> hist_names, series_names;
  for (const auto& [name, h] : m.histograms()) hist_names.push_back(name);
  for (const auto& [name, s] : m.series_channels())
    series_names.push_back(name);
  EXPECT_EQ(hist_names, (std::vector<std::string>{"alpha", "zeta"}));
  EXPECT_EQ(series_names, (std::vector<std::string>{"alpha", "zeta"}));
}

// --- event loop profiler ---------------------------------------------------

TEST(EventLoopProfiler, CountsTagsAndQueueHighWater) {
  EventLoopProfiler prof;
  EventLoop loop;
  loop.set_profiler(&prof);
  int fired = 0;
  for (int i = 0; i < 3; ++i) {
    loop.schedule(milliseconds(i), [&] { ++fired; }, "tick");
  }
  loop.schedule(milliseconds(9), [&] { ++fired; });  // untagged
  loop.run();
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(prof.dispatched, 4u);
  EXPECT_EQ(prof.queue_high_water, 4u);
  ASSERT_EQ(prof.by_tag.count("tick"), 1u);
  EXPECT_EQ(prof.by_tag.at("tick").count, 3u);
  ASSERT_EQ(prof.by_tag.count("(untagged)"), 1u);
  EXPECT_EQ(prof.by_tag.at("(untagged)").count, 1u);
}

TEST(EventLoopProfiler, DetachedLoopDoesNotRecord) {
  EventLoopProfiler prof;
  EventLoop loop;
  loop.schedule(milliseconds(1), [] {}, "tick");
  loop.run();
  EXPECT_EQ(prof.dispatched, 0u);
}

// --- text exporters --------------------------------------------------------

TEST(MetricsText, EmitsCumulativeBucketsAndCounters) {
  TelemetryConfig cfg;
  cfg.enabled = true;
  SimContext ctx(1, cfg);
  ++ctx.metrics().counter("tcp.retransmits");
  Histogram& h = ctx.metrics().histogram("e2e.latency_ms", 0.0, 10.0, 2);
  h.add(1.0);
  h.add(6.0);
  std::ostringstream out;
  write_metrics_text(out, capture_telemetry(ctx));
  const std::string text = out.str();
  EXPECT_NE(text.find("tracemod_tcp_retransmits 1"), std::string::npos)
      << text;
  // Buckets are cumulative: le="10" must hold both samples.
  EXPECT_NE(text.find("le=\"5\"} 1"), std::string::npos) << text;
  EXPECT_NE(text.find("le=\"10\"} 2"), std::string::npos) << text;
  EXPECT_NE(text.find("le=\"+Inf\"} 2"), std::string::npos) << text;
  EXPECT_NE(text.find("_count 2"), std::string::npos) << text;
}

TEST(Report, OmitsWallClockWhenAsked) {
  TelemetryConfig cfg;
  cfg.enabled = true;
  SimContext ctx(1, cfg);
  ctx.loop().schedule(milliseconds(1), [] {}, "tick");
  ctx.loop().run();
  std::ostringstream with, without;
  write_report(with, capture_telemetry(ctx), /*include_wall_time=*/true);
  write_report(without, capture_telemetry(ctx), /*include_wall_time=*/false);
  EXPECT_NE(with.str().find("self="), std::string::npos);
  EXPECT_EQ(without.str().find("self="), std::string::npos);
}

}  // namespace
}  // namespace tracemod::sim
