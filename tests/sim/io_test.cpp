// Tests for the durable-write plane (DESIGN.md section 15): the seeded
// fault schedule, FileSink's syscall-boundary fault handling, the
// atomic-replace and append-journal contracts, and the crash-consistency
// guarantee that a kill at ANY syscall leaves either the previous
// complete artifact or the new complete artifact, never a mix.

#include <cerrno>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/io/durable.hpp"
#include "sim/io/fault_plan.hpp"
#include "sim/io/file_sink.hpp"
#include "sim/metric_names.hpp"
#include "sim/sim_context.hpp"

#if !defined(_WIN32)
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace tracemod::sim::io {
namespace {

namespace fs = std::filesystem;

std::string tmp(const std::string& name) {
  return testing::TempDir() + "tracemod_io_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void spill(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  ASSERT_TRUE(out.good()) << path;
}

// --- fault-plan spec grammar ------------------------------------------------

TEST(FaultPlanConfigTest, SpecRoundTrip) {
  const std::string spec =
      "seed=42;match=.journal;short-write-chance=0.25;eintr-chance=0.5;"
      "enospc-after-bytes=1024;eio-at-op=3;fsync-fail-at=2;rename-fail-at=1;"
      "crash-at-op=7;log=/tmp/faults.log";
  auto cfg = FaultPlanConfig::parse(spec);
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->seed, 42u);
  EXPECT_EQ(cfg->match, ".journal");
  EXPECT_DOUBLE_EQ(cfg->short_write_chance, 0.25);
  EXPECT_DOUBLE_EQ(cfg->eintr_chance, 0.5);
  EXPECT_EQ(cfg->enospc_after_bytes, 1024u);
  EXPECT_EQ(cfg->eio_at_op, 3u);
  EXPECT_EQ(cfg->fsync_fail_at, 2u);
  EXPECT_EQ(cfg->rename_fail_at, 1u);
  EXPECT_EQ(cfg->crash_at_op, 7u);
  EXPECT_EQ(cfg->log_path, "/tmp/faults.log");
  EXPECT_TRUE(cfg->any_fault());

  // The canonical spec re-parses to the same configuration.
  auto again = FaultPlanConfig::parse(cfg->to_spec());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->to_spec(), cfg->to_spec());
}

TEST(FaultPlanConfigTest, CommaSeparatorAndDefaults) {
  auto cfg = FaultPlanConfig::parse("seed=9,enospc-after-bytes=10");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->seed, 9u);
  EXPECT_EQ(cfg->enospc_after_bytes, 10u);
  auto empty = FaultPlanConfig::parse("");
  ASSERT_TRUE(empty.has_value());
  EXPECT_FALSE(empty->any_fault());
}

TEST(FaultPlanConfigTest, MalformedSpecsAreRejectedWithDiagnosis) {
  const char* bad[] = {
      "frobnicate=1",            // unknown key
      "seed",                    // no '='
      "seed=abc",                // not a number
      "short-write-chance=1.5",  // chance out of [0,1]
      "eintr-chance=-0.1",
      "enospc-after-bytes=",     // empty value
  };
  for (const char* spec : bad) {
    std::string error;
    EXPECT_FALSE(FaultPlanConfig::parse(spec, &error).has_value()) << spec;
    EXPECT_FALSE(error.empty()) << spec;
  }
}

// --- schedule determinism and scoping ---------------------------------------

TEST(FaultPlanTest, SameSeedSameWorkloadSameFaultLog) {
  FaultPlanConfig cfg;
  cfg.seed = 1234;
  cfg.short_write_chance = 0.4;
  cfg.eintr_chance = 0.3;
  cfg.enospc_after_bytes = 700;
  FaultPlan a(cfg);
  FaultPlan b(cfg);

  const struct {
    IoOp op;
    std::size_t bytes;
  } workload[] = {
      {IoOp::kOpen, 0},   {IoOp::kWrite, 100}, {IoOp::kWrite, 250},
      {IoOp::kFsync, 0},  {IoOp::kWrite, 300}, {IoOp::kWrite, 300},
      {IoOp::kRename, 0}, {IoOp::kClose, 0},   {IoOp::kWrite, 64},
  };
  for (const auto& step : workload) {
    const FaultDecision da = a.next(step.op, "x.journal", step.bytes);
    const FaultDecision db = b.next(step.op, "x.journal", step.bytes);
    EXPECT_EQ(da.kind, db.kind);
    EXPECT_EQ(da.err, db.err);
    EXPECT_EQ(da.write_len, db.write_len);
  }
  const std::vector<InjectedFault> la = a.log();
  const std::vector<InjectedFault> lb = b.log();
  ASSERT_EQ(la.size(), lb.size());
  for (std::size_t i = 0; i < la.size(); ++i) {
    EXPECT_EQ(la[i].op_index, lb[i].op_index);
    EXPECT_EQ(la[i].op, lb[i].op);
    EXPECT_EQ(la[i].kind, lb[i].kind);
    EXPECT_EQ(la[i].path, lb[i].path);
  }
  std::ostringstream ta, tb;
  a.write_log(ta);
  b.write_log(tb);
  EXPECT_EQ(ta.str(), tb.str());
}

TEST(FaultPlanTest, UnmatchedPathsDoNotAdvanceTheSchedule) {
  FaultPlanConfig cfg;
  cfg.match = ".journal";
  cfg.eio_at_op = 1;
  FaultPlan plan(cfg);

  // Unrelated artifacts come and go without consuming op #1.
  EXPECT_FALSE(plan.next(IoOp::kWrite, "status.tmst", 10).fault());
  EXPECT_FALSE(plan.next(IoOp::kWrite, "report.json", 10).fault());
  EXPECT_EQ(plan.ops_seen(), 0u);

  const FaultDecision d = plan.next(IoOp::kWrite, "sweep.journal", 10);
  EXPECT_EQ(d.kind, FaultKind::kEio);
  EXPECT_EQ(d.err, EIO);
  EXPECT_EQ(plan.ops_seen(), 1u);
}

TEST(FaultPlanTest, CrashPointKillsEveryLaterOperation) {
  FaultPlanConfig cfg;
  cfg.crash_at_op = 2;
  FaultPlan plan(cfg);

  EXPECT_FALSE(plan.next(IoOp::kOpen, "a", 0).fault());
  const FaultDecision crash = plan.next(IoOp::kWrite, "a", 100);
  EXPECT_EQ(crash.kind, FaultKind::kCrash);
  EXPECT_LT(crash.write_len, 100u);  // strict prefix of a torn write
  EXPECT_TRUE(plan.crashed());

  // The plan is dead: every subsequent matched op fails with no effects.
  for (IoOp op : {IoOp::kWrite, IoOp::kFsync, IoOp::kRename, IoOp::kClose}) {
    const FaultDecision d = plan.next(op, "a", 10);
    EXPECT_EQ(d.kind, FaultKind::kCrashed);
    EXPECT_EQ(d.err, ECANCELED);
  }
}

TEST(FaultPlanTest, FsyncAndRenameCountersOnlyCountTheirOps) {
  FaultPlanConfig cfg;
  cfg.fsync_fail_at = 2;
  cfg.rename_fail_at = 1;
  FaultPlan plan(cfg);

  EXPECT_FALSE(plan.next(IoOp::kFsync, "a", 0).fault());   // fsync #1
  EXPECT_FALSE(plan.next(IoOp::kWrite, "a", 8).fault());   // not an fsync
  EXPECT_EQ(plan.next(IoOp::kRename, "a", 0).kind, FaultKind::kRenameFail);
  EXPECT_EQ(plan.next(IoOp::kFsync, "a", 0).kind, FaultKind::kFsyncFail);
}

// --- FileSink fault handling ------------------------------------------------

TEST(FileSinkTest, EnospcFiresAfterTheByteBudget) {
  FaultPlanConfig cfg;
  cfg.enospc_after_bytes = 10;
  FaultPlan plan(cfg);

  const std::string path = tmp("sink_enospc");
  FileSink sink;
  ASSERT_TRUE(sink.open(path, FileSink::Mode::kTruncate, &plan).ok);
  EXPECT_TRUE(sink.write("12345678", 8).ok);

  const IoResult r = sink.write("12345678", 8);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.error.err, ENOSPC);
  EXPECT_EQ(r.error.op, IoOp::kWrite);
  EXPECT_NE(r.error.detail.find("0 of 8 bytes landed"), std::string::npos)
      << r.error.detail;
  // The budgeted bytes are on disk; the refused write left nothing.
  EXPECT_EQ(slurp(path), "12345678");
  EXPECT_EQ(sink.offset(), 8u);
  (void)sink.close();
}

TEST(FileSinkTest, ShortWriteLandsASeededStrictPrefix) {
  FaultPlanConfig cfg;
  cfg.seed = 5;
  cfg.short_write_chance = 1.0;
  FaultPlan plan(cfg);

  const std::string path = tmp("sink_short");
  const std::string payload(100, 'x');
  FileSink sink;
  ASSERT_TRUE(sink.open(path, FileSink::Mode::kTruncate, &plan).ok);
  const IoResult r = sink.write(payload.data(), payload.size());
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.detail.find("short write"), std::string::npos);

  const std::string landed = slurp(path);
  EXPECT_GE(landed.size(), 1u);
  EXPECT_LT(landed.size(), payload.size());
  EXPECT_EQ(landed, payload.substr(0, landed.size()));
  EXPECT_EQ(sink.offset(), landed.size());
  (void)sink.close();
}

TEST(FileSinkTest, InjectedEintrIsInvisibleToCallers) {
  // A correct caller retries EINTR, so an EINTR-only schedule must change
  // nothing observable.  Seeds are scanned so the assertion "at least one
  // EINTR was actually dealt" cannot rot silently.
  bool injected_at_least_once = false;
  for (std::uint64_t seed = 1; seed <= 50 && !injected_at_least_once;
       ++seed) {
    FaultPlanConfig cfg;
    cfg.seed = seed;
    cfg.eintr_chance = 0.5;
    FaultPlan plan(cfg);

    const std::string path = tmp("sink_eintr");
    FileSink sink;
    ASSERT_TRUE(sink.open(path, FileSink::Mode::kTruncate, &plan).ok);
    ASSERT_TRUE(sink.write("hello eintr world", 17).ok);
    ASSERT_TRUE(sink.datasync().ok);
    ASSERT_TRUE(sink.close().ok);
    EXPECT_EQ(slurp(path), "hello eintr world");
    for (const InjectedFault& f : plan.log()) {
      if (f.kind == FaultKind::kEintr) injected_at_least_once = true;
    }
  }
  EXPECT_TRUE(injected_at_least_once);
}

// --- atomic replace ---------------------------------------------------------

TEST(AtomicFileWriterTest, PublishesAndReplaces) {
  const std::string path = tmp("atomic_basic");
  ASSERT_TRUE(write_file_atomic(path, "version one").ok);
  EXPECT_EQ(slurp(path), "version one");
  ASSERT_TRUE(write_file_atomic(path, "version two, longer").ok);
  EXPECT_EQ(slurp(path), "version two, longer");
}

TEST(AtomicFileWriterTest, DestructorAbortsAnUncommittedWrite) {
  const std::string path = tmp("atomic_dtor");
  ASSERT_TRUE(write_file_atomic(path, "previous").ok);
  std::string tmp_name;
  {
    AtomicFileWriter writer(path);
    ASSERT_TRUE(writer.open().ok);
    ASSERT_TRUE(writer.write("half-finish").ok);
    tmp_name = writer.tmp_path();
    EXPECT_TRUE(fs::exists(tmp_name));
  }
  EXPECT_EQ(slurp(path), "previous");
  EXPECT_FALSE(fs::exists(tmp_name));
}

TEST(AtomicFileWriterTest, FailedFsyncRefusesThePublish) {
  // Renaming un-synced bytes would publish data power loss can un-write,
  // so a failed fsync must leave the previous artifact and no tmp.
  const std::string path = tmp("atomic_fsync_fail");
  ASSERT_TRUE(write_file_atomic(path, "previous").ok);

  FaultPlanConfig cfg;
  cfg.fsync_fail_at = 1;
  FaultPlan plan(cfg);
  AtomicFileWriter writer(path, &plan);
  ASSERT_TRUE(writer.open().ok);
  ASSERT_TRUE(writer.write("next").ok);
  const IoResult r = writer.commit();
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.error.op, IoOp::kFsync);
  EXPECT_EQ(slurp(path), "previous");
  EXPECT_FALSE(fs::exists(writer.tmp_path()));
}

TEST(AtomicFileWriterTest, FailedRenameLeavesPreviousAndNoTmp) {
  const std::string path = tmp("atomic_rename_fail");
  ASSERT_TRUE(write_file_atomic(path, "previous").ok);

  FaultPlanConfig cfg;
  cfg.rename_fail_at = 1;
  FaultPlan plan(cfg);
  AtomicFileWriter writer(path, &plan);
  ASSERT_TRUE(writer.open().ok);
  ASSERT_TRUE(writer.write("next").ok);
  const IoResult r = writer.commit();
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.error.op, IoOp::kRename);
  EXPECT_EQ(slurp(path), "previous");
  EXPECT_FALSE(fs::exists(writer.tmp_path()));
}

TEST(AtomicFileWriterTest, CrashAtEverySyscallLeavesOldOrNewNeverAMix) {
  // The whole point of the contract: for every crash point in the publish
  // sequence (open, write, fsync, close, rename, dir fsync), the target
  // reads back as exactly the previous artifact or exactly the new one.
  const std::string v1 = "previous artifact, fully intact";
  const std::string v2 = "NEW artifact -- different bytes and length";
  for (std::uint64_t crash_at = 1; crash_at <= 8; ++crash_at) {
    const std::string path =
        tmp("atomic_crash_" + std::to_string(crash_at));
    ASSERT_TRUE(write_file_atomic(path, v1).ok);

    FaultPlanConfig cfg;
    cfg.seed = crash_at;
    cfg.crash_at_op = crash_at;
    FaultPlan plan(cfg);
    const IoResult r = write_file_atomic(path, v2, &plan);

    const std::string now = slurp(path);
    EXPECT_TRUE(now == v1 || now == v2)
        << "crash at op " << crash_at << " left a torn artifact: \"" << now
        << "\"";
    // Op 7+ is past the end of the publish sequence: no crash fires and
    // the commit must have succeeded.
    if (crash_at >= 7) {
      EXPECT_TRUE(r.ok) << crash_at;
      EXPECT_EQ(now, v2);
    } else {
      EXPECT_FALSE(r.ok) << crash_at;
    }
  }
}

TEST(AtomicFileWriterTest, ConcurrentWritersGetDistinctTmpNames) {
  const std::string path = tmp("atomic_unique");
  AtomicFileWriter a(path);
  AtomicFileWriter b(path);
  ASSERT_TRUE(a.open().ok);
  ASSERT_TRUE(b.open().ok);
  EXPECT_NE(a.tmp_path(), b.tmp_path());
  ASSERT_TRUE(a.write("from a").ok);
  ASSERT_TRUE(b.write("from b").ok);
  ASSERT_TRUE(a.commit().ok);
  ASSERT_TRUE(b.commit().ok);
  // Last committer wins; neither tmp survives.
  EXPECT_EQ(slurp(path), "from b");
  EXPECT_FALSE(fs::exists(a.tmp_path()));
  EXPECT_FALSE(fs::exists(b.tmp_path()));
}

#if !defined(_WIN32)
TEST(AtomicFileWriterTest, SweepReclaimsDeadPidAndLegacyTmpsOnly) {
  // A really-dead pid: fork a child that exits immediately and reap it.
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) _exit(0);
  ASSERT_EQ(waitpid(child, nullptr, 0), child);

  const std::string path = tmp("atomic_sweep");
  spill(path, "live artifact");
  const std::string legacy = path + ".tmp";
  const std::string dead =
      path + ".tmp." + std::to_string(child) + ".7";
  const std::string own =
      path + ".tmp." + std::to_string(getpid()) + ".999999";
  const std::string unparsable = path + ".tmp.notapid.1";
  spill(legacy, "legacy fixed-name tmp");
  spill(dead, "wreckage of a killed writer");
  spill(own, "in-flight write of THIS process");
  spill(unparsable, "not ours to reclaim");

  EXPECT_EQ(AtomicFileWriter::sweep_stale_tmp(path), 2u);
  EXPECT_FALSE(fs::exists(legacy));
  EXPECT_FALSE(fs::exists(dead));
  EXPECT_TRUE(fs::exists(own));
  EXPECT_TRUE(fs::exists(unparsable));
  EXPECT_EQ(slurp(path), "live artifact");

  // Idempotent: a second sweep finds nothing reclaimable.
  EXPECT_EQ(AtomicFileWriter::sweep_stale_tmp(path), 0u);
  fs::remove(own);
  fs::remove(unparsable);
}

TEST(AtomicFileWriterTest, OpenSweepsCrashWreckageOfDeadWriters) {
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) _exit(0);
  ASSERT_EQ(waitpid(child, nullptr, 0), child);

  const std::string path = tmp("atomic_open_sweep");
  const std::string dead = path + ".tmp." + std::to_string(child) + ".0";
  spill(dead, "wreckage");

  AtomicFileWriter writer(path);
  ASSERT_TRUE(writer.open().ok);
  EXPECT_FALSE(fs::exists(dead)) << "open() must sweep dead-pid tmps";
  ASSERT_TRUE(writer.write("fresh").ok);
  ASSERT_TRUE(writer.commit().ok);
  EXPECT_EQ(slurp(path), "fresh");
}
#endif  // !_WIN32

TEST(AtomicFileWriterTest, WriteArtifactOrComplainReportsFailure) {
  const std::string path = tmp("artifact_complain");
  fs::remove(path);  // leftovers from a previous run of this binary
  FaultPlanConfig cfg;
  cfg.rename_fail_at = 1;
  FaultPlan plan(cfg);
  testing::internal::CaptureStderr();
  EXPECT_FALSE(write_artifact_or_complain(path, "doomed", &plan));
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("cannot write"), std::string::npos) << err;
  EXPECT_NE(err.find(path), std::string::npos) << err;
  EXPECT_FALSE(fs::exists(path));

  EXPECT_TRUE(write_artifact_or_complain(path, "fine"));
  EXPECT_EQ(slurp(path), "fine");
}

// --- append journal ---------------------------------------------------------

TEST(AppendJournalWriterTest, AppendsFramesAfterASyncedHeader) {
  const std::string path = tmp("journal_basic");
  AppendJournalWriter w;
  ASSERT_TRUE(w.open_fresh(path, "HDR!").ok);
  EXPECT_EQ(w.committed_bytes(), 4u);
  ASSERT_TRUE(w.append("frame-1").ok);
  ASSERT_TRUE(w.append("frame-2").ok);
  EXPECT_EQ(w.committed_bytes(), 4u + 14u);
  ASSERT_TRUE(w.close().ok);
  EXPECT_EQ(slurp(path), "HDR!frame-1frame-2");
}

TEST(AppendJournalWriterTest, OpenExistingResumesAtTheEnd) {
  const std::string path = tmp("journal_resume");
  {
    AppendJournalWriter w;
    ASSERT_TRUE(w.open_fresh(path, "HDR!").ok);
    ASSERT_TRUE(w.append("one").ok);
    ASSERT_TRUE(w.close().ok);
  }
  AppendJournalWriter w;
  ASSERT_TRUE(w.open_existing(path).ok);
  EXPECT_EQ(w.committed_bytes(), 7u);
  ASSERT_TRUE(w.append("two").ok);
  ASSERT_TRUE(w.close().ok);
  EXPECT_EQ(slurp(path), "HDR!onetwo");
}

TEST(AppendJournalWriterTest, EnospcDegradesWithoutLosingCommittedFrames) {
  FaultPlanConfig cfg;
  cfg.enospc_after_bytes = 20;  // header(8) + frame1(8) fit; frame2 does not
  FaultPlan plan(cfg);
  AppendJournalWriter::Options options;
  options.sync_every_frames = 1;
  options.plan = &plan;

  const std::string path = tmp("journal_enospc");
  AppendJournalWriter w;
  ASSERT_TRUE(w.open_fresh(path, "TMHJHDR:", options).ok);
  ASSERT_TRUE(w.append("frame-01").ok);
  EXPECT_EQ(w.committed_bytes(), 16u);

  const IoResult r = w.append("frame-02");
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.error.err, ENOSPC);
  EXPECT_TRUE(w.degraded());
  EXPECT_FALSE(w.is_open());
  EXPECT_EQ(w.last_error().err, ENOSPC);

  // The failed append is not visible as committed bytes on disk.
  EXPECT_EQ(w.committed_bytes(), 16u);
  EXPECT_EQ(fs::file_size(path), 16u);
  EXPECT_EQ(slurp(path), "TMHJHDR:frame-01");

  // Degraded writers fail cheaply; the producing run keeps computing.
  const IoResult later = w.append("frame-03");
  EXPECT_FALSE(later.ok);
  EXPECT_NE(later.error.detail.find("degraded"), std::string::npos);
  EXPECT_EQ(fs::file_size(path), 16u);
}

TEST(AppendJournalWriterTest, TornAppendIsTruncatedBackToTheFrameBoundary) {
  // A short write lands a strict prefix of a frame; degrade() must
  // truncate that torn tail so the file ends at the last committed frame.
  // Seeds are scanned for the schedule "header ok, frame1 ok, frame2
  // torn" so the test stays deterministic without pinning RNG internals.
  bool exercised = false;
  for (std::uint64_t seed = 1; seed <= 500 && !exercised; ++seed) {
    FaultPlanConfig cfg;
    cfg.seed = seed;
    cfg.short_write_chance = 0.5;
    FaultPlan plan(cfg);
    AppendJournalWriter::Options options;
    options.sync_every_frames = 0;  // writes only; syncs not under test
    options.plan = &plan;

    const std::string path = tmp("journal_torn");
    AppendJournalWriter w;
    if (!w.open_fresh(path, "TMHJHDR:", options).ok) continue;
    if (!w.append("frame-01").ok) continue;
    if (w.append("frame-02").ok) continue;

    exercised = true;
    EXPECT_TRUE(w.degraded());
    EXPECT_EQ(w.committed_bytes(), 16u);
    EXPECT_EQ(fs::file_size(path), 16u)
        << "torn tail survived (seed " << seed << ")";
    EXPECT_EQ(slurp(path), "TMHJHDR:frame-01");
  }
  ASSERT_TRUE(exercised) << "no seed in [1,500] dealt the torn-frame "
                            "schedule; the fault model changed";
}

TEST(AppendJournalWriterTest, FailedOpenDegradesImmediately) {
  FaultPlanConfig cfg;
  cfg.eio_at_op = 1;  // the open itself
  FaultPlan plan(cfg);
  AppendJournalWriter::Options options;
  options.plan = &plan;

  AppendJournalWriter w;
  const IoResult r = w.open_fresh(tmp("journal_bad_open"), "HDR!", options);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(w.degraded());
  EXPECT_FALSE(w.is_open());
}

// --- counters and metrics ---------------------------------------------------

TEST(IoCountersTest, FailuresAndDegradationsAreCountedAndExported) {
  // Counters are process-global; other tests in this binary also bump
  // them, so assert deltas, not absolutes.
  const std::uint64_t write_errors_before =
      io_counters().write_errors.load();
  const std::uint64_t degraded_before = io_counters().degraded_planes.load();

  FaultPlanConfig cfg;
  cfg.enospc_after_bytes = 1;
  FaultPlan plan(cfg);
  FileSink sink;
  ASSERT_TRUE(sink.open(tmp("counters"), FileSink::Mode::kTruncate, &plan).ok);
  const IoResult r = sink.write("too many bytes", 14);
  ASSERT_FALSE(r.ok);
  (void)sink.close();
  EXPECT_GT(io_counters().write_errors.load(), write_errors_before);

  note_degraded_plane("unit-test-plane", r.error);
  EXPECT_GT(io_counters().degraded_planes.load(), degraded_before);
  bool noted = false;
  for (const std::string& note : degraded_plane_notes()) {
    if (note.find("unit-test-plane") != std::string::npos) noted = true;
  }
  EXPECT_TRUE(noted);

  MetricsRegistry metrics;
  export_io_metrics(metrics);
  EXPECT_EQ(metrics.value(metric::kIoWriteErrors),
            io_counters().write_errors.load());
  EXPECT_EQ(metrics.value(metric::kIoFsyncFailures),
            io_counters().fsync_failures.load());
  EXPECT_EQ(metrics.value(metric::kIoDegradedPlanes),
            io_counters().degraded_planes.load());
  EXPECT_EQ(metrics.value(metric::kStatusPublishFailed),
            io_counters().status_publish_failures.load());
}

}  // namespace
}  // namespace tracemod::sim::io
