// The wall-clock perf plane's contracts: call-path attribution, sampling
// that keeps counts exact, the disabled-is-free and attached-is-
// virtual-time-identical guarantees, exporter shapes, and the perf.*
// metric family staying inside the declared namespace.
#include "sim/perf/perf.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/model.hpp"
#include "scenarios/campus.hpp"
#include "scenarios/experiment.hpp"
#include "sim/event_loop.hpp"
#include "sim/metric_names.hpp"
#include "sim/perf/report.hpp"
#include "sim/telemetry.hpp"

namespace tracemod::sim::perf {
namespace {

/// Burns a little CPU so sampled self-times are nonzero without sleeping.
void spin() {
  volatile std::uint64_t x = 0;
  for (int i = 0; i < 20000; ++i) x += static_cast<std::uint64_t>(i);
}

const PerfPath* find_path(const PerfSnapshot& snap, const std::string& p) {
  for (const PerfPath& path : snap.paths) {
    if (path.path == p) return &path;
  }
  return nullptr;
}

TEST(PerfProfiler, NoSessionMeansNoCurrentAndScopesAreNoops) {
  EXPECT_EQ(current(), nullptr);
  {
    PerfScope scope(Domain::kOther, "orphan");
    EXPECT_EQ(current(), nullptr);
  }
}

TEST(PerfProfiler, SessionsAttachAndNestAndRestore) {
  PerfProfiler outer_p;
  PerfProfiler inner_p;
  EXPECT_EQ(current(), nullptr);
  {
    PerfSession outer(outer_p);
    EXPECT_EQ(current(), &outer_p);
    {
      PerfSession inner(inner_p);
      EXPECT_EQ(current(), &inner_p);
    }
    EXPECT_EQ(current(), &outer_p);
  }
  EXPECT_EQ(current(), nullptr);
}

TEST(PerfProfiler, NestedScopesBuildCallPaths) {
  PerfProfiler profiler;
  {
    PerfSession session(profiler);
    for (int i = 0; i < 3; ++i) {
      PerfScope a(Domain::kEventLoop, "tick");
      PerfScope b(Domain::kPacketPath, "node.send");
      if (i == 0) {
        PerfScope c(Domain::kModulation, "modulation.modulate");
      }
    }
  }
  const PerfSnapshot snap = capture_perf(profiler);
  const PerfPath* tick = find_path(snap, "event_loop;tick");
  const PerfPath* send = find_path(snap, "event_loop;tick;node.send");
  const PerfPath* mod =
      find_path(snap, "event_loop;tick;node.send;modulation.modulate");
  ASSERT_NE(tick, nullptr);
  ASSERT_NE(send, nullptr);
  ASSERT_NE(mod, nullptr);
  EXPECT_EQ(tick->count, 3u);
  EXPECT_EQ(send->count, 3u);
  EXPECT_EQ(mod->count, 1u);
  EXPECT_EQ(mod->leaf_domain, Domain::kModulation);
}

TEST(PerfProfiler, SiblingScopesWithSameLabelMergeAcrossOccurrences) {
  PerfProfiler profiler;
  {
    PerfSession session(profiler);
    for (int i = 0; i < 5; ++i) {
      PerfScope root(Domain::kOther, "root");
      PerfScope leaf(Domain::kOther, "leaf");
    }
  }
  // One node per distinct (parent, domain, label): 5 occurrences share it.
  EXPECT_EQ(profiler.nodes().size(), 2u);
  EXPECT_EQ(profiler.roots().size(), 1u);
  EXPECT_EQ(profiler.nodes()[0].count, 5u);
}

TEST(PerfProfiler, SamplingStrideKeepsCountsExactAndScalesEstimates) {
  PerfConfig cfg;
  cfg.sampling_stride = 4;
  PerfProfiler profiler(cfg);
  {
    PerfSession session(profiler);
    for (int i = 0; i < 100; ++i) {
      PerfScope root(Domain::kOther, "sampled");
      spin();
    }
  }
  const PerfSnapshot snap = capture_perf(profiler);
  ASSERT_EQ(snap.paths.size(), 1u);
  const PerfPath& p = snap.paths[0];
  EXPECT_EQ(p.count, 100u);          // counts are exact regardless
  EXPECT_EQ(p.timed_count, 25u);     // one in four occurrences timed
  EXPECT_GT(p.est_total_s, 0.0);     // estimate scaled up from the sample
  EXPECT_EQ(snap.sampling_stride, 4u);
}

TEST(PerfProfiler, ChildTimingFollowsTheSampledRoot) {
  // The whole stack of a selected root occurrence is timed together, so
  // self = total - child subtraction never mixes sampled and unsampled
  // frames.
  PerfConfig cfg;
  cfg.sampling_stride = 2;
  PerfProfiler profiler(cfg);
  {
    PerfSession session(profiler);
    for (int i = 0; i < 10; ++i) {
      PerfScope root(Domain::kOther, "root");
      PerfScope child(Domain::kOther, "child");
      spin();
    }
  }
  const PerfSnapshot snap = capture_perf(profiler);
  const PerfPath* root = find_path(snap, "other;root");
  const PerfPath* child = find_path(snap, "other;root;child");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(root->timed_count, 5u);
  EXPECT_EQ(child->timed_count, 5u);
  EXPECT_GE(root->est_total_s, child->est_total_s);
  EXPECT_GE(root->est_self_s, 0.0);
}

TEST(PerfProfiler, EventLoopDispatchIsCountedAndSampled) {
  PerfConfig cfg;
  cfg.counter_sample_every = 8;
  PerfProfiler profiler(cfg);
  EventLoop loop;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 100) loop.schedule(milliseconds(1), chain, "perf.tick");
  };
  {
    PerfSession session(profiler);
    loop.schedule(milliseconds(1), chain, "perf.tick");
    loop.run();
  }
  EXPECT_EQ(fired, 100);
  EXPECT_EQ(profiler.dispatched(), 100u);
  const PerfSnapshot snap = capture_perf(profiler);
  const PerfPath* tick = find_path(snap, "event_loop;perf.tick");
  ASSERT_NE(tick, nullptr);
  EXPECT_EQ(tick->count, 100u);
  // 100 dispatches at one sample per 8: periodic counter samples landed.
  ASSERT_FALSE(snap.samples.empty());
  std::uint64_t prev = 0;
  for (const auto& s : snap.samples) {
    EXPECT_GE(s.dispatched, prev);
    prev = s.dispatched;
    EXPECT_GE(s.wall_s, 0.0);
  }
  EXPECT_LE(prev, 100u);
}

TEST(PerfProfiler, AttachedRunIsVirtualTimeIdenticalOnCampus) {
  // The headline contract: attaching the profiler never changes what the
  // simulation computes.  The campus digest hashes every counter and
  // final host state, so equality here is byte-equivalence of the world.
  scenarios::CampusConfig cfg;
  cfg.hosts = 50;
  cfg.horizon = from_seconds(2);
  cfg.seed = 42;
  const scenarios::CampusResult plain = scenarios::run_campus(cfg);

  PerfProfiler profiler;
  scenarios::CampusResult profiled;
  {
    PerfSession session(profiler);
    profiled = scenarios::run_campus(cfg);
  }
  ASSERT_TRUE(plain.ok);
  ASSERT_TRUE(profiled.ok);
  EXPECT_EQ(plain.digest, profiled.digest);
  EXPECT_EQ(plain.events, profiled.events);
  EXPECT_DOUBLE_EQ(plain.virtual_s, profiled.virtual_s);
  EXPECT_GT(profiler.dispatched(), 0u);
}

TEST(PerfProfiler, AttachedRunIsVirtualTimeIdenticalOnModulatedBenchmark) {
  const core::ReplayTrace trace =
      core::ReplayTrace::wavelan_like(seconds(30));
  const scenarios::BenchmarkOutcome plain = scenarios::run_modulated_benchmark(
      trace, scenarios::BenchmarkKind::kFtpRecv, 7, milliseconds(10), 0.0);

  PerfProfiler profiler;
  scenarios::BenchmarkOutcome profiled;
  {
    PerfSession session(profiler);
    profiled = scenarios::run_modulated_benchmark(
        trace, scenarios::BenchmarkKind::kFtpRecv, 7, milliseconds(10), 0.0);
  }
  ASSERT_TRUE(plain.ok);
  ASSERT_TRUE(profiled.ok);
  EXPECT_DOUBLE_EQ(plain.elapsed_s, profiled.elapsed_s);
}

TEST(PerfReport, PipelineHotspotsLandInTheExpectedDomains) {
  // Shape test for the acceptance bar: profile the modulated pipeline and
  // pin where the top self-time paths live.  Every hotspot must sit under
  // a declared domain root, and the profile must attribute work to the
  // event loop, the packet path, and the modulation layer (those are the
  // subsystems the workload exercises).
  PerfProfiler profiler;
  {
    PerfSession session(profiler);
    const core::ReplayTrace trace =
        core::ReplayTrace::wavelan_like(seconds(60));
    const scenarios::BenchmarkOutcome out = scenarios::run_modulated_benchmark(
        trace, scenarios::BenchmarkKind::kFtpRecv, 1, milliseconds(10), 0.0);
    ASSERT_TRUE(out.ok);
  }
  const PerfSnapshot snap = capture_perf(profiler);
  ASSERT_GE(snap.paths.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const std::string& path = snap.paths[i].path;
    const std::size_t semi = path.find(';');
    ASSERT_NE(semi, std::string::npos) << path;
    const std::string root = path.substr(0, semi);
    bool known = false;
    for (std::size_t d = 0; d < kDomainCount; ++d) {
      known |= root == to_string(static_cast<Domain>(d));
    }
    EXPECT_TRUE(known) << "hotspot root '" << root << "' in " << path;
  }
  bool saw_event_loop = false, saw_packet = false, saw_modulation = false;
  for (const PerfDomainStats& d : snap.domains) {
    saw_event_loop |= d.domain == Domain::kEventLoop;
    saw_packet |= d.domain == Domain::kPacketPath;
    saw_modulation |= d.domain == Domain::kModulation;
  }
  EXPECT_TRUE(saw_event_loop);
  EXPECT_TRUE(saw_packet);
  EXPECT_TRUE(saw_modulation);
  EXPECT_GT(snap.dispatched, 0u);
  EXPECT_GT(snap.wall_s, 0.0);
}

TEST(PerfReport, FlamegraphIsCollapsedStackFormat) {
  PerfProfiler profiler;
  {
    PerfSession session(profiler);
    for (int i = 0; i < 50; ++i) {
      PerfScope root(Domain::kOther, "hot");
      spin();
    }
  }
  std::ostringstream out;
  write_flamegraph(out, capture_perf(profiler));
  const std::string text = out.str();
  ASSERT_FALSE(text.empty());
  // Every line is "semicolon;joined;path <integer us>\n".
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_GT(std::stoll(line.substr(space + 1)), 0) << line;
    EXPECT_NE(line.substr(0, space).find("other;hot"), std::string::npos);
  }
}

TEST(PerfReport, PerfJsonCarriesTheV1Schema) {
  PerfProfiler profiler;
  {
    PerfSession session(profiler);
    PerfScope root(Domain::kOther, "workload");
    spin();
  }
  std::ostringstream out;
  write_perf_json(out, capture_perf(profiler), "unit-test", 12.5, 5,
                  "\"digest\": \"abc\"");
  const std::string json = out.str();
  EXPECT_NE(json.find("\"schema\": \"tracemod-perf-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"workload\": \"unit-test\""), std::string::npos);
  EXPECT_NE(json.find("\"sim_s\": 12.500000"), std::string::npos);
  EXPECT_NE(json.find("\"sim_per_wall\""), std::string::npos);
  EXPECT_NE(json.find("\"digest\": \"abc\""), std::string::npos);
  EXPECT_NE(json.find("\"hotspots\""), std::string::npos);
  EXPECT_NE(json.find("\"allocs_per_event\""), std::string::npos);
  EXPECT_NE(json.find("\"events_per_sec\""), std::string::npos);
}

TEST(PerfReport, PerfFamilyStaysInsideDeclaredMetricNames) {
  // Drift guard for the perf.* family: everything append_perf_to_telemetry
  // adds must be declared in metric_names.hpp, and the snapshot's sorted-
  // name invariant must survive the append.
  PerfProfiler profiler;
  {
    PerfSession session(profiler);
    EventLoop loop;
    int fired = 0;
    std::function<void()> chain = [&] {
      if (++fired < 64) loop.schedule(milliseconds(1), chain, "drift.tick");
    };
    loop.schedule(milliseconds(1), chain, "drift.tick");
    loop.run();
  }
  TelemetrySnapshot tel;
  append_perf_to_telemetry(tel, capture_perf(profiler));

  for (const auto& [name, value] : tel.counters) {
    bool declared = false;
    for (const char* known : metric::kAllCounterNames) declared |= name == known;
    EXPECT_TRUE(declared) << "counter '" << name << "' undeclared";
  }
  for (const auto& [name, series] : tel.series) {
    bool declared = false;
    for (const char* known : metric::kAllSeriesNames) declared |= name == known;
    EXPECT_TRUE(declared) << "series '" << name << "' undeclared";
  }
  for (const auto& [name, hist] : tel.histograms) {
    bool declared = false;
    for (const char* known : metric::kAllHistogramNames)
      declared |= name == known;
    EXPECT_TRUE(declared) << "histogram '" << name << "' undeclared";
  }
  auto sorted = [](const auto& entries) {
    for (std::size_t i = 1; i < entries.size(); ++i) {
      if (entries[i - 1].first >= entries[i].first) return false;
    }
    return true;
  };
  EXPECT_TRUE(sorted(tel.counters));
  EXPECT_TRUE(sorted(tel.series));
  EXPECT_TRUE(sorted(tel.histograms));
  // The family actually landed (not vacuous).
  bool has_profiled = false;
  for (const auto& [name, value] : tel.counters) {
    has_profiled |= name == metric::kPerfEventsProfiled;
  }
  EXPECT_TRUE(has_profiled);
}

TEST(PerfReport, ReportShapeIsDeterministicWithoutWallTimes) {
  PerfProfiler profiler;
  {
    PerfSession session(profiler);
    PerfScope a(Domain::kCellIndex, "cell.query");
  }
  std::ostringstream out;
  write_perf_report(out, capture_perf(profiler), 10,
                    /*include_wall_time=*/false);
  const std::string text = out.str();
  EXPECT_NE(text.find("cell_index"), std::string::npos);
  EXPECT_NE(text.find("cell.query"), std::string::npos);
  EXPECT_EQ(text.find("wall"), std::string::npos);
}

}  // namespace
}  // namespace tracemod::sim::perf
