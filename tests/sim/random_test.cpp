#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/stats.hpp"

namespace tracemod::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsIndependentButDeterministic) {
  Rng a(7);
  Rng a2(7);
  Rng child = a.fork();
  Rng child2 = a2.fork();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(child.next_u64(), child2.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(5.0, 6.5);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 6.5);
  }
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  Rng r(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(0, 9);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 9);
    saw_lo |= (v == 0);
    saw_hi |= (v == 9);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceEdgeCases) {
  Rng r(6);
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_FALSE(r.chance(-1.0));
  EXPECT_TRUE(r.chance(1.0));
  EXPECT_TRUE(r.chance(2.0));
}

TEST(Rng, ChanceFrequencyApproximatesP) {
  Rng r(7);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng r(8);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(r.exponential(2.0));
  EXPECT_NEAR(s.mean(), 2.0, 0.1);
  EXPECT_GT(s.min(), 0.0);
}

TEST(Rng, NormalMoments) {
  Rng r(9);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(r.normal(10.0, 3.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.15);
  EXPECT_NEAR(s.stddev(), 3.0, 0.15);
}

TEST(Rng, ParetoBounded) {
  Rng r(10);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.pareto(1.2, 100.0, 100000.0);
    EXPECT_GE(v, 100.0 * 0.999);
    EXPECT_LE(v, 100000.0 * 1.001);
  }
}

TEST(Rng, ParetoIsHeavyTailed) {
  // Median should sit near the low bound, far below the midpoint.
  Rng r(11);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(r.pareto(1.0, 1.0, 1000.0));
  EXPECT_LT(percentile_of(xs, 0.5), 10.0);
  EXPECT_GT(max_of(xs), 100.0);
}

}  // namespace
}  // namespace tracemod::sim
