#include "sim/tick_clock.hpp"

#include <gtest/gtest.h>

#include "sim/clock_model.hpp"

namespace tracemod::sim {
namespace {

TEST(TickClock, QuantizesToNearestTick) {
  TickClock tc(milliseconds(10));
  EXPECT_EQ(tc.quantize(kEpoch + milliseconds(14)), kEpoch + milliseconds(10));
  EXPECT_EQ(tc.quantize(kEpoch + milliseconds(15)), kEpoch + milliseconds(20));
  EXPECT_EQ(tc.quantize(kEpoch + milliseconds(20)), kEpoch + milliseconds(20));
  EXPECT_EQ(tc.quantize(kEpoch + milliseconds(4)), kEpoch);
}

TEST(TickClock, HalfTickThreshold) {
  // The paper: packets to be delayed less than half a clock tick are sent
  // immediately (Section 3.3).
  TickClock tc(milliseconds(10));
  EXPECT_TRUE(tc.below_threshold(milliseconds(4)));
  EXPECT_TRUE(tc.below_threshold(microseconds(4999)));
  EXPECT_FALSE(tc.below_threshold(milliseconds(5)));
  EXPECT_FALSE(tc.below_threshold(milliseconds(50)));
}

TEST(TickClock, IdealClockPassesThrough) {
  TickClock tc(Duration{0});
  const TimePoint t = kEpoch + microseconds(12345);
  EXPECT_EQ(tc.quantize(t), t);
  EXPECT_FALSE(tc.below_threshold(nanoseconds(1)));
  EXPECT_TRUE(tc.below_threshold(Duration{0}));
}

TEST(TickClock, CoarserResolution) {
  TickClock tc(milliseconds(100));
  EXPECT_EQ(tc.quantize(kEpoch + milliseconds(149)),
            kEpoch + milliseconds(100));
  EXPECT_EQ(tc.quantize(kEpoch + milliseconds(150)),
            kEpoch + milliseconds(200));
  EXPECT_TRUE(tc.below_threshold(milliseconds(49)));
}

TEST(ClockModel, PerfectClockIsIdentity) {
  ClockModel clock;
  const TimePoint t = kEpoch + seconds(100);
  EXPECT_EQ(clock.read(t), t);
}

TEST(ClockModel, SkewAccumulates) {
  ClockModel::Config cfg;
  cfg.skew_ppm = 100.0;  // 100 us/s fast
  ClockModel clock(cfg, Rng(1));
  const TimePoint t = kEpoch + seconds(1000);
  const Duration drift = clock.read(t) - t;
  EXPECT_NEAR(to_seconds(drift), 0.1, 1e-6);
}

TEST(ClockModel, OffsetApplied) {
  ClockModel::Config cfg;
  cfg.offset = milliseconds(250);
  ClockModel clock(cfg, Rng(1));
  EXPECT_EQ(clock.read(kEpoch), kEpoch + milliseconds(250));
}

TEST(ClockModel, JitterBounded) {
  ClockModel::Config cfg;
  cfg.jitter = microseconds(100);
  ClockModel clock(cfg, Rng(2));
  const TimePoint t = kEpoch + seconds(5);
  for (int i = 0; i < 1000; ++i) {
    const Duration err = clock.read(t) - t;
    EXPECT_LE(err, microseconds(100));
    EXPECT_GE(err, -microseconds(100));
  }
}

}  // namespace
}  // namespace tracemod::sim
