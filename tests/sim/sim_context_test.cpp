#include "sim/sim_context.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tracemod::sim {
namespace {

TEST(SimContext, PacketIdsAreDenseFromOne) {
  SimContext ctx;
  EXPECT_EQ(ctx.next_packet_id(), 1u);
  EXPECT_EQ(ctx.next_packet_id(), 2u);
  EXPECT_EQ(ctx.next_packet_id(), 3u);
  EXPECT_EQ(ctx.packet_ids_issued(), 3u);
}

TEST(SimContext, TwoLiveContextsNeverSharePacketIdState) {
  // The point of killing the process-global counter: a context's id
  // sequence must be a pure function of its own activity.  Interleave two
  // live contexts and check that neither perturbs the other.
  SimContext a(1), b(2);
  std::vector<std::uint64_t> from_a, from_b;
  for (int i = 0; i < 5; ++i) {
    from_a.push_back(a.next_packet_id());
    from_b.push_back(b.next_packet_id());
    from_b.push_back(b.next_packet_id());  // b runs "hotter" than a
  }
  for (std::size_t i = 0; i < from_a.size(); ++i) {
    EXPECT_EQ(from_a[i], i + 1);
  }
  for (std::size_t i = 0; i < from_b.size(); ++i) {
    EXPECT_EQ(from_b[i], i + 1);
  }
}

TEST(SimContext, SameSeedSameRngStream) {
  SimContext a(42), b(42);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.rng().next_u64(), b.rng().next_u64());
  }
}

TEST(SimContext, ForkedRngDoesNotDisturbRoot) {
  SimContext a(7), b(7);
  Rng child = a.fork_rng();
  (void)child.next_u64();
  (void)b.fork_rng();
  // After both contexts forked once, their root streams still agree.
  EXPECT_EQ(a.rng().next_u64(), b.rng().next_u64());
}

TEST(SimContext, OwnsAnEventLoopStartingAtEpoch) {
  SimContext ctx;
  EXPECT_EQ(ctx.loop().now(), kEpoch);
  bool fired = false;
  ctx.loop().schedule(milliseconds(1), [&] { fired = true; });
  ctx.loop().run();
  EXPECT_TRUE(fired);
}

TEST(MetricsRegistry, CountersAreStableReferences) {
  MetricsRegistry metrics;
  std::uint64_t& sent = metrics.counter("net.packets_sent");
  sent = 5;
  // Creating more counters must not invalidate the first reference.
  for (int i = 0; i < 100; ++i) {
    metrics.counter("filler." + std::to_string(i));
  }
  sent += 1;
  EXPECT_EQ(metrics.value("net.packets_sent"), 6u);
  EXPECT_EQ(metrics.value("no.such.counter"), 0u);
}

TEST(MetricsRegistry, SnapshotIsSortedByName) {
  MetricsRegistry metrics;
  metrics.counter("b") = 2;
  metrics.counter("a") = 1;
  metrics.counter("c") = 3;
  const auto snap = metrics.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].first, "a");
  EXPECT_EQ(snap[1].first, "b");
  EXPECT_EQ(snap[2].first, "c");
  EXPECT_EQ(snap[1].second, 2u);
}

}  // namespace
}  // namespace tracemod::sim
